//! Piecewise-constant current waveforms.
//!
//! A device's current draw is piecewise constant *by construction* — it
//! only changes when the power-state machine transitions. Storing a
//! 50 kS/s sample vector for a mostly-sleeping device therefore wastes
//! five orders of magnitude of memory repeating the sleep current.
//!
//! [`Waveform`] stores one `(start, mA)` entry per state transition in
//! the capture window: O(transitions) instead of O(duration × rate).
//! Statistics (mean, RMS, charge, duty cycle) are computed *exactly* by
//! integrating segments, and a dense [`CurrentTrace`] for plotting or
//! CSV export is materialized lazily with
//! [`Waveform::materialize`] — sample-for-sample identical to what
//! [`crate::Multimeter::sample`] has always produced, which that method
//! now delegates through this type.

use crate::multimeter::CurrentTrace;
use wile_device::{CurrentModel, StateTrace};
use wile_radio::time::{Duration, Instant};

/// A current waveform stored as maximal constant segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    start: Instant,
    end: Instant,
    /// `(segment start, current mA)`; the first entry starts at
    /// `self.start`, entries are strictly increasing in time, and
    /// adjacent entries differ in value. Each segment extends to the
    /// next entry's start (the last to `self.end`).
    segments: Vec<(Instant, f64)>,
}

impl Waveform {
    /// Capture the current waveform of `trace` under `model` over
    /// `[from, to)`. Instants before the first recorded transition draw
    /// 0 mA, exactly like the sampling path always has.
    pub fn capture(
        trace: &StateTrace,
        model: &CurrentModel,
        from: Instant,
        to: Instant,
    ) -> Waveform {
        assert!(to >= from);
        let at_start = trace
            .state_at(from)
            .map(|s| model.current_ma(s))
            .unwrap_or(0.0);
        let mut raw: Vec<(Instant, f64)> = vec![(from, at_start)];
        for &(t, s) in trace.transitions() {
            if t <= from {
                continue;
            }
            if t >= to {
                break;
            }
            let ma = model.current_ma(s);
            match raw.last_mut() {
                // Two transitions at one instant: the later one is the
                // state actually occupied after that instant.
                Some(last) if last.0 == t => last.1 = ma,
                _ => raw.push((t, ma)),
            }
        }
        // Coalesce distinct states that happen to draw the same current.
        let mut segments: Vec<(Instant, f64)> = Vec::with_capacity(raw.len());
        for (t, ma) in raw {
            match segments.last() {
                Some(&(_, prev)) if prev == ma => {}
                _ => segments.push((t, ma)),
            }
        }
        Waveform {
            start: from,
            end: to,
            segments,
        }
    }

    /// Start of the capture window.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// End of the capture window.
    pub fn end(&self) -> Instant {
        self.end
    }

    /// Duration covered.
    pub fn duration(&self) -> Duration {
        self.end.since(self.start)
    }

    /// Number of constant segments stored.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The stored segments as `(start, end, mA)` triples.
    pub fn segments(&self) -> impl Iterator<Item = (Instant, Instant, f64)> + '_ {
        self.segments.iter().enumerate().map(move |(i, &(t, ma))| {
            let end = self
                .segments
                .get(i + 1)
                .map(|&(n, _)| n)
                .unwrap_or(self.end);
            (t, end, ma)
        })
    }

    /// The current at `t` (the segment containing it; `end` reads the
    /// final segment).
    pub fn at(&self, t: Instant) -> f64 {
        assert!(t >= self.start && t <= self.end);
        let i = self.segments.partition_point(|&(s, _)| s <= t);
        self.segments[i.saturating_sub(1)].1
    }

    /// Peak current, mA (never negative; an empty window reads 0).
    pub fn peak_ma(&self) -> f64 {
        if self.duration() == Duration::ZERO {
            return 0.0;
        }
        self.segments.iter().map(|&(_, ma)| ma).fold(0.0, f64::max)
    }

    /// Exact time-weighted mean current, mA.
    pub fn mean_ma(&self) -> f64 {
        let t = self.duration().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        self.charge_mc() / t
    }

    /// Exact charge, millicoulombs (∫ i dt over the window).
    pub fn charge_mc(&self) -> f64 {
        self.segments()
            .map(|(s, e, ma)| ma * e.since(s).as_secs_f64())
            .sum()
    }

    /// Exact RMS current, mA.
    pub fn rms_ma(&self) -> f64 {
        let t = self.duration().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let sq: f64 = self
            .segments()
            .map(|(s, e, ma)| ma * ma * e.since(s).as_secs_f64())
            .sum();
        (sq / t).sqrt()
    }

    /// Exact fraction of the window spent above `threshold_ma`.
    pub fn duty_cycle_above(&self, threshold_ma: f64) -> f64 {
        let t = self.duration().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let above: f64 = self
            .segments()
            .filter(|&(_, _, ma)| ma > threshold_ma)
            .map(|(s, e, _)| e.since(s).as_secs_f64())
            .sum();
        above / t
    }

    /// Crest factor: peak / RMS (0 for a silent window).
    pub fn crest_factor(&self) -> f64 {
        let rms = self.rms_ma();
        if rms == 0.0 {
            return 0.0;
        }
        self.peak_ma() / rms
    }

    /// Materialize a dense uniform-rate [`CurrentTrace`].
    ///
    /// Sample `i` is taken at `start + i / rate`, reading the segment
    /// that contains that instant — bit-identical to sampling the
    /// original state trace point by point, because segment boundaries
    /// *are* the transition instants.
    pub fn materialize(&self, sample_rate_hz: u64) -> CurrentTrace {
        let interval = Duration::from_nanos(1_000_000_000 / sample_rate_hz);
        let n = (self.end.since(self.start).as_nanos() / interval.as_nanos()) as usize;
        let mut samples = Vec::with_capacity(n);
        let mut idx = 0usize;
        for i in 0..n {
            let t = self.start + Duration::from_nanos(interval.as_nanos() * i as u64);
            while idx + 1 < self.segments.len() && self.segments[idx + 1].0 <= t {
                idx += 1;
            }
            samples.push(self.segments.get(idx).map(|&(_, ma)| ma).unwrap_or(0.0));
        }
        CurrentTrace {
            start: self.start,
            sample_interval: interval,
            samples_ma: samples,
        }
    }

    /// Bytes this representation holds resident.
    pub fn memory_bytes(&self) -> usize {
        self.segments.len() * std::mem::size_of::<(Instant, f64)>()
    }

    /// Bytes a dense sample vector over the same window at
    /// `sample_rate_hz` would hold resident.
    pub fn dense_memory_bytes(&self, sample_rate_hz: u64) -> usize {
        let interval = 1_000_000_000 / sample_rate_hz;
        (self.end.since(self.start).as_nanos() / interval) as usize * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multimeter::Multimeter;
    use wile_device::{Mcu, PowerState};

    fn square_wave() -> (StateTrace, CurrentModel) {
        let mut m = Mcu::esp32(Instant::ZERO);
        m.stay(PowerState::DeepSleep, Duration::from_ms(100));
        m.stay(PowerState::RadioListen, Duration::from_ms(100));
        m.deep_sleep();
        let model = *m.model();
        (m.into_trace(), model)
    }

    /// The original per-sample implementation, kept inline as the
    /// reference for materialization identity.
    fn sample_reference(
        rate: u64,
        trace: &StateTrace,
        model: &CurrentModel,
        from: Instant,
        to: Instant,
    ) -> Vec<f64> {
        let interval = Duration::from_nanos(1_000_000_000 / rate);
        let n = (to.since(from).as_nanos() / interval.as_nanos()) as usize;
        (0..n)
            .map(|i| {
                let t = from + Duration::from_nanos(interval.as_nanos() * i as u64);
                trace
                    .state_at(t)
                    .map(|s| model.current_ma(s))
                    .unwrap_or(0.0)
            })
            .collect()
    }

    #[test]
    fn materialization_is_bit_identical_to_per_sample_reads() {
        let (trace, model) = square_wave();
        for rate in [50_000, 7_919, 1_000] {
            let wf = Waveform::capture(&trace, &model, Instant::ZERO, Instant::from_ms(200));
            let dense = wf.materialize(rate);
            let want = sample_reference(rate, &trace, &model, Instant::ZERO, Instant::from_ms(200));
            assert_eq!(dense.samples_ma, want, "rate {rate}");
        }
    }

    #[test]
    fn window_before_first_transition_is_zero() {
        let mut m = Mcu::esp32(Instant::from_ms(50));
        m.stay(PowerState::RadioListen, Duration::from_ms(10));
        let model = *m.model();
        let trace = m.into_trace();
        let wf = Waveform::capture(&trace, &model, Instant::ZERO, Instant::from_ms(100));
        assert_eq!(wf.at(Instant::from_ms(10)), 0.0);
        let dense = wf.materialize(50_000);
        let want = sample_reference(50_000, &trace, &model, Instant::ZERO, Instant::from_ms(100));
        assert_eq!(dense.samples_ma, want);
    }

    #[test]
    fn exact_stats_on_square_wave() {
        let (trace, model) = square_wave();
        let wf = Waveform::capture(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        let expect_mean = (0.0025 + 95.0) / 2.0;
        assert!(
            (wf.mean_ma() - expect_mean).abs() < 1e-9,
            "{}",
            wf.mean_ma()
        );
        let expect_rms = ((0.0025f64.powi(2) + 95.0f64.powi(2)) / 2.0).sqrt();
        assert!((wf.rms_ma() - expect_rms).abs() < 1e-9);
        assert!((wf.peak_ma() - 95.0).abs() < 1e-9);
        assert!((wf.duty_cycle_above(1.0) - 0.5).abs() < 1e-12);
        assert!((wf.charge_mc() - expect_mean * 0.2).abs() < 1e-9);
    }

    #[test]
    fn segment_memory_is_tiny_compared_to_dense() {
        let (trace, model) = square_wave();
        let wf = Waveform::capture(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        // 3 states → ≤ 3 segments; dense holds 10 000 samples.
        assert!(wf.segment_count() <= 3);
        assert!(wf.dense_memory_bytes(50_000) >= 1_000 * wf.memory_bytes());
    }

    #[test]
    fn multimeter_sample_delegates_unchanged() {
        let (trace, model) = square_wave();
        let mm = Multimeter::keysight_34465a();
        let via_mm = mm.sample(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        let via_wf = mm
            .capture(&trace, &model, Instant::ZERO, Instant::from_ms(200))
            .materialize(mm.sample_rate_hz);
        assert_eq!(via_mm.samples_ma, via_wf.samples_ma);
        assert_eq!(via_mm.sample_interval, via_wf.sample_interval);
    }

    #[test]
    fn empty_window() {
        let (trace, model) = square_wave();
        let wf = Waveform::capture(&trace, &model, Instant::from_ms(5), Instant::from_ms(5));
        assert_eq!(wf.mean_ma(), 0.0);
        assert_eq!(wf.rms_ma(), 0.0);
        assert_eq!(wf.peak_ma(), 0.0);
        assert!(wf.materialize(50_000).samples_ma.is_empty());
    }
}
