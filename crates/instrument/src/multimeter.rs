//! Sampling a state trace into a current waveform.

use crate::waveform::Waveform;
use wile_device::{CurrentModel, StateTrace};
use wile_radio::time::{Duration, Instant};

/// A sampled current waveform: uniform sample spacing, values in mA.
#[derive(Debug, Clone)]
pub struct CurrentTrace {
    /// Time of the first sample.
    pub start: Instant,
    /// Spacing between samples.
    pub sample_interval: Duration,
    /// Current samples, milliamps.
    pub samples_ma: Vec<f64>,
}

impl CurrentTrace {
    /// Timestamp of sample `i`.
    pub fn time_of(&self, i: usize) -> Instant {
        self.start + Duration::from_nanos(self.sample_interval.as_nanos() * i as u64)
    }

    /// Duration covered by the trace.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.sample_interval.as_nanos() * self.samples_ma.len() as u64)
    }

    /// Peak current, mA (0 for an empty trace).
    pub fn peak_ma(&self) -> f64 {
        self.samples_ma.iter().copied().fold(0.0, f64::max)
    }

    /// Mean current, mA (0 for an empty trace).
    pub fn mean_ma(&self) -> f64 {
        if self.samples_ma.is_empty() {
            return 0.0;
        }
        self.samples_ma.iter().sum::<f64>() / self.samples_ma.len() as f64
    }

    /// Charge by rectangle rule, millicoulombs.
    pub fn charge_mc(&self) -> f64 {
        self.mean_ma() * self.duration().as_secs_f64()
    }

    /// Downsample by an integer factor (mean of each bucket) — used when
    /// rendering multi-second figures at terminal width.
    pub fn downsample(&self, factor: usize) -> CurrentTrace {
        assert!(factor >= 1);
        let samples_ma = self
            .samples_ma
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        CurrentTrace {
            start: self.start,
            sample_interval: Duration::from_nanos(self.sample_interval.as_nanos() * factor as u64),
            samples_ma,
        }
    }
}

/// The simulated digital multimeter.
#[derive(Debug, Clone, Copy)]
pub struct Multimeter {
    /// Samples per second. The paper's instrument: 50 000.
    pub sample_rate_hz: u64,
}

impl Multimeter {
    /// The paper's Keysight 34465A configuration.
    pub fn keysight_34465a() -> Self {
        Multimeter {
            sample_rate_hz: 50_000,
        }
    }

    /// Sample the device current between `from` and `to`.
    ///
    /// Each sample reads the state at its own timestamp — exactly what a
    /// real sampling DMM does; sub-sample spikes shorter than 20 µs can
    /// be missed, which is why energy accounting should use
    /// [`crate::energy::energy_mj`] (exact span integration) and traces
    /// are for *plotting*. The divergence between the two is itself
    /// measured in this crate's tests.
    ///
    /// Implemented as [`Multimeter::capture`] followed by
    /// [`Waveform::materialize`]; the result is sample-for-sample
    /// identical to reading the state trace at every sample instant.
    pub fn sample(
        &self,
        trace: &StateTrace,
        model: &CurrentModel,
        from: Instant,
        to: Instant,
    ) -> CurrentTrace {
        self.capture(trace, model, from, to)
            .materialize(self.sample_rate_hz)
    }

    /// Capture the window as a compact piecewise-constant [`Waveform`]
    /// — O(state transitions) memory instead of O(duration × rate) —
    /// which can be analysed exactly or materialized densely later.
    pub fn capture(
        &self,
        trace: &StateTrace,
        model: &CurrentModel,
        from: Instant,
        to: Instant,
    ) -> Waveform {
        Waveform::capture(trace, model, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wile_device::{Mcu, PowerState};

    fn device_with_square_wave() -> (StateTrace, CurrentModel) {
        let mut m = Mcu::esp32(Instant::ZERO);
        m.stay(PowerState::DeepSleep, Duration::from_ms(100));
        m.stay(PowerState::RadioListen, Duration::from_ms(100));
        m.deep_sleep();
        let model = *m.model();
        (m.into_trace(), model)
    }

    #[test]
    fn sample_count_matches_rate() {
        let (trace, model) = device_with_square_wave();
        let mm = Multimeter::keysight_34465a();
        let ct = mm.sample(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        assert_eq!(ct.samples_ma.len(), 10_000); // 0.2 s × 50 kS/s
        assert_eq!(ct.sample_interval, Duration::from_us(20));
    }

    #[test]
    fn waveform_tracks_states() {
        let (trace, model) = device_with_square_wave();
        let mm = Multimeter::keysight_34465a();
        let ct = mm.sample(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        // First half deep sleep (2.5 µA), second half listen (95 mA).
        assert!(ct.samples_ma[100] < 0.01);
        assert!(ct.samples_ma[7_500] > 90.0);
        assert!((ct.peak_ma() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_square_wave() {
        let (trace, model) = device_with_square_wave();
        let mm = Multimeter::keysight_34465a();
        let ct = mm.sample(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        let expect = (0.0025 + 95.0) / 2.0;
        assert!((ct.mean_ma() - expect).abs() < 0.5, "{}", ct.mean_ma());
    }

    #[test]
    fn sub_sample_spike_can_be_missed_at_low_rate() {
        // A 46 µs TX spike sampled at 1 kS/s (1 ms spacing) is usually
        // invisible -- the reason the paper needed a fast DMM.
        let mut m = Mcu::esp32(Instant::ZERO);
        // Offset the spike off the 1 ms sampling grid.
        m.stay(PowerState::DeepSleep, Duration::from_us(10_400));
        m.stay(
            PowerState::RadioTx { power_dbm: 0.0 },
            Duration::from_us(46),
        );
        m.stay(PowerState::DeepSleep, Duration::from_us(9_554));
        let model = *m.model();
        let trace = m.into_trace();
        let slow = Multimeter {
            sample_rate_hz: 1_000,
        };
        let ct = slow.sample(&trace, &model, Instant::ZERO, Instant::from_ms(20));
        assert!(
            ct.peak_ma() < 1.0,
            "1 kS/s saw the spike at {} mA",
            ct.peak_ma()
        );
        // The paper-grade rate sees it.
        let fast = Multimeter {
            sample_rate_hz: 50_000,
        };
        let ct = fast.sample(&trace, &model, Instant::ZERO, Instant::from_ms(20));
        assert!(ct.peak_ma() > 150.0);
    }

    #[test]
    fn downsample_preserves_mean() {
        let (trace, model) = device_with_square_wave();
        let mm = Multimeter::keysight_34465a();
        let ct = mm.sample(&trace, &model, Instant::ZERO, Instant::from_ms(200));
        let ds = ct.downsample(100);
        assert_eq!(ds.samples_ma.len(), 100);
        assert!((ds.mean_ma() - ct.mean_ma()).abs() < 1e-9);
        assert_eq!(ds.duration(), ct.duration());
    }

    #[test]
    fn empty_window() {
        let (trace, model) = device_with_square_wave();
        let mm = Multimeter::keysight_34465a();
        let ct = mm.sample(&trace, &model, Instant::from_ms(5), Instant::from_ms(5));
        assert!(ct.samples_ma.is_empty());
        assert_eq!(ct.mean_ma(), 0.0);
        assert_eq!(ct.charge_mc(), 0.0);
    }
}
