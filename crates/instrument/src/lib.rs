//! # wile-instrument — the simulated bench multimeter
//!
//! The paper measures everything with a Keysight 34465A in series with
//! the 3.3 V supply, "capable of taking 50,000 samples per second"
//! (§5.1, Figure 2). This crate reproduces that measurement path:
//!
//! * [`multimeter`] — sample a device's state trace into a current
//!   waveform at a configurable rate;
//! * [`energy`] — integrate current (exactly from spans, or numerically
//!   from samples) into charge and energy, including per-phase splits;
//! * [`export`] — CSV / gnuplot-style data files and a terminal ASCII
//!   renderer used by the examples to redraw Figure 3;
//! * [`stats`] — RMS, percentiles, duty cycle, crest factor;
//! * [`waveform`] — piecewise-constant segment waveforms: exact
//!   statistics in O(state transitions) memory, with lazy dense
//!   materialization for plotting and export.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod energy;
pub mod export;
pub mod multimeter;
pub mod stats;
pub mod waveform;

pub use energy::{energy_mj, EnergyReport, PhaseEnergy};
pub use multimeter::{CurrentTrace, Multimeter};
pub use waveform::Waveform;
