//! Structured run traces: an ordered stream of sim-time events with a
//! JSONL export carrying a schema-versioned header.

use crate::json::Json;
use wile_radio::time::Instant;

/// Schema identifier written into every trace header.
pub const TRACE_SCHEMA: &str = "wile.run-trace";
/// Schema version written into every trace header; bump on any field
/// change so downstream tooling can refuse traces it doesn't understand.
pub const TRACE_VERSION: u32 = 1;

/// What kind of moment a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An actor-emitted `(event, value)` sample (`Ctx::emit`).
    Emit,
    /// A span opened.
    SpanEnter,
    /// A span closed; `value` is the span duration in nanoseconds.
    SpanExit,
}

impl TraceKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Emit => "emit",
            TraceKind::SpanEnter => "span_enter",
            TraceKind::SpanExit => "span_exit",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Instant,
    /// Index of the actor (or lane) the event is attributed to.
    pub actor: u32,
    /// Record kind.
    pub kind: TraceKind,
    /// Event or span name (static so tracing never allocates per event).
    pub name: &'static str,
    /// Payload: emit value, or span duration in ns for `SpanExit`.
    pub value: u64,
}

/// An append-only event stream recorded during a run.
///
/// Events append strictly in dispatch order, so for a fixed seed the
/// stream is byte-identical across runs. Disabled by default: at metro
/// scale a trace would hold hundreds of millions of events, so callers
/// opt in per run.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl RunTrace {
    /// An empty, disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether events are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op while disabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// All recorded events, in dispatch order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append another trace's events (shard-order merge).
    pub fn append_from(&mut self, other: &RunTrace) {
        self.events.extend_from_slice(&other.events);
    }

    /// Serialize to JSONL: a schema-versioned header object on line 1,
    /// then one event object per line.
    ///
    /// ```text
    /// {"schema":"wile.run-trace","version":1,"events":2}
    /// {"at_ns":1000,"actor":0,"kind":"emit","name":"tx","value":7}
    /// ...
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = Json::obj()
            .field("schema", Json::str(TRACE_SCHEMA))
            .field("version", Json::int(TRACE_VERSION as u64))
            .field("events", Json::int(self.events.len() as u64))
            .render();
        out.push('\n');
        for ev in &self.events {
            out.push_str(
                &Json::obj()
                    .field("at_ns", Json::int(ev.at.as_nanos()))
                    .field("actor", Json::int(ev.actor as u64))
                    .field("kind", Json::str(ev.kind.as_str()))
                    .field("name", Json::str(ev.name))
                    .field("value", Json::int(ev.value))
                    .render(),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(at_us: u64, actor: u32, kind: TraceKind, name: &'static str, value: u64) -> TraceEvent {
        TraceEvent {
            at: Instant::from_us(at_us),
            actor,
            kind,
            name,
            value,
        }
    }

    #[test]
    fn disabled_by_default() {
        let mut t = RunTrace::new();
        t.push(ev(1, 0, TraceKind::Emit, "tx", 1));
        assert!(t.is_empty());
        t.set_enabled(true);
        t.push(ev(1, 0, TraceKind::Emit, "tx", 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn jsonl_header_and_lines_parse() {
        let mut t = RunTrace::new();
        t.set_enabled(true);
        t.push(ev(5, 2, TraceKind::Emit, "poll", 3));
        t.push(ev(9, 2, TraceKind::SpanExit, "cycle", 4_000));
        let text = t.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = json::parse(lines[0]).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some(TRACE_SCHEMA));
        assert_eq!(header.get("version").unwrap().as_f64(), Some(1.0));
        assert_eq!(header.get("events").unwrap().as_f64(), Some(2.0));
        let line = json::parse(lines[2]).unwrap();
        assert_eq!(line.get("kind").unwrap().as_str(), Some("span_exit"));
        assert_eq!(line.get("at_ns").unwrap().as_f64(), Some(9_000.0));
        assert_eq!(line.get("value").unwrap().as_f64(), Some(4_000.0));
    }
}
