//! Wall-clock profiling, explicitly **nondeterministic**.
//!
//! Everything here measures real elapsed time and thread scheduling, so
//! none of it may leak into the deterministic snapshot: the report
//! renderer prints this section under a `# nondeterministic` banner and
//! excludes it from digests. Collection is off unless the process runs
//! with `WILE_PROF=1`, so the hot paths pay one cached boolean load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant as WallInstant;

static PROF_STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 off, 2 on

#[derive(Default)]
struct ProfCell {
    calls: u64,
    total_ns: u64,
    max_ns: u64,
}

static PROF: Mutex<BTreeMap<&'static str, ProfCell>> = Mutex::new(BTreeMap::new());

/// Whether wall-clock profiling is active (`WILE_PROF=1`). The env var
/// is read once and cached for the life of the process.
pub fn prof_enabled() -> bool {
    match PROF_STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var("WILE_PROF")
                .map(|v| v == "1")
                .unwrap_or(false);
            PROF_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Record one timed call under `name` (no-op when profiling is off).
pub fn prof_record(name: &'static str, elapsed_ns: u64) {
    if !prof_enabled() {
        return;
    }
    let mut map = PROF.lock().unwrap();
    let cell = map.entry(name).or_default();
    cell.calls += 1;
    cell.total_ns += elapsed_ns;
    if elapsed_ns > cell.max_ns {
        cell.max_ns = elapsed_ns;
    }
}

/// Record a pre-counted quantity (e.g. cells processed by one worker)
/// without timing semantics; stored as calls=n with zero duration.
pub fn prof_count(name: &'static str, n: u64) {
    if !prof_enabled() {
        return;
    }
    let mut map = PROF.lock().unwrap();
    map.entry(name).or_default().calls += n;
}

/// An RAII wall-clock timer: times from construction to drop and feeds
/// [`prof_record`]. Construction is ~free when profiling is off.
pub struct ProfScope {
    name: &'static str,
    started: Option<WallInstant>,
}

impl ProfScope {
    /// Start timing `name` (inert unless `WILE_PROF=1`).
    pub fn new(name: &'static str) -> Self {
        ProfScope {
            name,
            started: prof_enabled().then(WallInstant::now),
        }
    }
}

impl Drop for ProfScope {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            prof_record(self.name, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Render the accumulated profile, one sorted line per site. Empty
/// string when nothing was recorded.
pub fn prof_report() -> String {
    let map = PROF.lock().unwrap();
    let mut out = String::new();
    for (name, cell) in map.iter() {
        out.push_str(&format!(
            "prof    {name} calls={} total_ms={:.3} max_ms={:.3}\n",
            cell.calls,
            cell.total_ns as f64 / 1e6,
            cell.max_ns as f64 / 1e6,
        ));
    }
    out
}

/// Clear all accumulated profile data (tests and repeated bench runs).
pub fn prof_reset() {
    PROF.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_env() {
        // The test harness never sets WILE_PROF, so scopes are no-ops
        // and the report stays empty (prof_record checks the flag too).
        let _scope = ProfScope::new("test.noop");
        drop(_scope);
        if !prof_enabled() {
            prof_record("test.noop", 123);
            assert_eq!(prof_report(), "");
        }
    }
}
