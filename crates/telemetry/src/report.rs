//! `TelemetryReport`: the sorted, stable end-of-run rendering.
//!
//! The report body is a pure function of the deterministic snapshot
//! (registry + trace length), so its digest is the identity witness the
//! differential tests compare across `WILE_WORKERS` settings. Wall-clock
//! profiling is appended only by [`TelemetryReport::render_with_prof`],
//! under an explicit `# nondeterministic` banner, and never digested.

use crate::collector::Telemetry;
use crate::json::Json;
use crate::prof;
use crate::registry::{fnv1a, Registry};

/// Schema identifier for the JSON report form.
pub const REPORT_SCHEMA: &str = "wile.telemetry-report";
/// Schema version for the JSON report form.
pub const REPORT_VERSION: u32 = 1;

/// A rendered, immutable snapshot of a run's deterministic telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    text: String,
    json: String,
    digest: u64,
}

impl TelemetryReport {
    /// Snapshot a collector (registry plus trace event count).
    pub fn from_telemetry(t: &Telemetry) -> Self {
        Self::build(t.registry(), t.trace().len() as u64)
    }

    /// Snapshot a bare registry (no trace).
    pub fn from_registry(reg: &Registry) -> Self {
        Self::build(reg, 0)
    }

    fn build(reg: &Registry, trace_events: u64) -> Self {
        let mut text = format!(
            "# wile telemetry report (instruments={} trace_events={trace_events})\n",
            reg.len()
        );
        text.push_str(&reg.render());
        let digest = fnv1a(text.as_bytes());
        let json = Json::obj()
            .field("schema", Json::str(REPORT_SCHEMA))
            .field("version", Json::int(REPORT_VERSION as u64))
            .field("trace_events", Json::int(trace_events))
            .field("digest", Json::str(format!("{digest:#018x}")))
            .field("instruments", reg.to_json())
            .render();
        TelemetryReport { text, json, digest }
    }

    /// The deterministic text body (header line + one line per
    /// instrument, sorted by key).
    pub fn render(&self) -> &str {
        &self.text
    }

    /// The deterministic JSON form (shares the workspace JSON helper
    /// with `wile-instrument::export`).
    pub fn to_json(&self) -> &str {
        &self.json
    }

    /// FNV-1a digest of the text body.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Text body plus the wall-clock profile under a banner that marks
    /// it nondeterministic. The profile is process-global, env-gated
    /// (`WILE_PROF=1`), and excluded from [`TelemetryReport::digest`].
    pub fn render_with_prof(&self) -> String {
        let mut out = self.text.clone();
        let profile = prof::prof_report();
        if !profile.is_empty() {
            out.push_str("# nondeterministic (wall clock, WILE_PROF=1)\n");
            out.push_str(&profile);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn digest_tracks_text() {
        let mut reg = Registry::new();
        reg.inc("a", &[], 1);
        let r1 = TelemetryReport::from_registry(&reg);
        assert_eq!(r1.digest(), fnv1a(r1.render().as_bytes()));
        reg.inc("a", &[], 1);
        let r2 = TelemetryReport::from_registry(&reg);
        assert_ne!(r1.digest(), r2.digest());
    }

    #[test]
    fn json_parses_and_carries_schema() {
        let mut reg = Registry::new();
        reg.observe("h", &[("lane", 3u64.into())], 42);
        let report = TelemetryReport::from_registry(&reg);
        let doc = json::parse(report.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(REPORT_SCHEMA));
        assert_eq!(doc.get("version").unwrap().as_f64(), Some(1.0));
        let instruments = doc.get("instruments").unwrap().as_arr().unwrap();
        assert_eq!(instruments.len(), 1);
        assert_eq!(
            instruments[0].get("type").unwrap().as_str(),
            Some("histogram")
        );
    }

    #[test]
    fn identical_registries_identical_reports() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for reg in [&mut a, &mut b] {
            reg.inc("x", &[], 7);
            reg.observe("y", &[], 1000);
        }
        let ra = TelemetryReport::from_registry(&a);
        let rb = TelemetryReport::from_registry(&b);
        assert_eq!(ra, rb);
        assert_eq!(ra.digest(), rb.digest());
    }
}
