//! A minimal JSON value model: builder, serializer, and parser.
//!
//! The build environment has no serde; this module is the one
//! serialization helper shared by [`crate::report::TelemetryReport`],
//! the JSONL trace writer, and `wile-instrument`'s figure-artifact
//! export, so every JSON byte the workspace emits goes through the
//! same escaping and number formatting rules. Object keys keep
//! insertion order, which callers are expected to make deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number; serialized via [`fmt_f64`].
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |v| ≤ 2^53; larger magnitudes are
    /// emitted as the nearest representable f64).
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A signed integer value.
    pub fn sint(v: i64) -> Json {
        Json::Num(v as f64)
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects — builder misuse).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::field on non-object"),
        }
        self
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Deterministic number formatting: integers in `i64` range print
/// without a fractional part, everything else via `{}` (shortest
/// round-trip float formatting). NaN/inf degrade to `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    if v.fract() == 0.0 && v.abs() < 9.22e18 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (used by round-trip tests and tooling; not a
/// validator — it accepts the subset this crate emits plus standard
/// escapes).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let doc = Json::obj()
            .field("name", Json::str("medium.tx"))
            .field("value", Json::int(42))
            .field("tags", Json::Arr(vec![Json::str("a"), Json::str("b")]));
        assert_eq!(
            doc.render(),
            r#"{"name":"medium.tx","value":42,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_specials() {
        let doc = Json::str("a\"b\\c\nd");
        assert_eq!(doc.render(), r#""a\"b\\c\nd""#);
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn round_trips() {
        let doc = Json::obj()
            .field("null", Json::Null)
            .field("bool", Json::Bool(true))
            .field("int", Json::int(9_007_199_254_740_991))
            .field("frac", Json::Num(0.125))
            .field(
                "nested",
                Json::obj().field("k", Json::Arr(vec![Json::int(1)])),
            );
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Json::obj().field("a", Json::Arr(vec![Json::int(1), Json::int(2)]))
        );
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }
}
