//! Sim-time spans: nestable enter/exit intervals attributed to an
//! actor or lane.
//!
//! Spans are stamped with *simulated* time, so their durations are
//! deterministic and belong in the deterministic snapshot (unlike
//! wall-clock profiling, which lives in [`crate::prof`]). Each actor
//! owns an independent stack, so spans nest per actor and interleave
//! freely across actors.

use std::collections::HashMap;

use wile_radio::time::Instant;

/// Per-actor open-span stacks.
///
/// The map is only ever indexed by a single actor (never iterated), so
/// `HashMap` iteration order can't leak into any deterministic output.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    open: HashMap<u32, Vec<(&'static str, Instant)>>,
    opened: u64,
    closed: u64,
}

impl SpanTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span named `name` on `actor` at sim time `at`.
    pub fn enter(&mut self, actor: u32, name: &'static str, at: Instant) {
        self.open.entry(actor).or_default().push((name, at));
        self.opened += 1;
    }

    /// Close the innermost open span on `actor`, returning its name and
    /// duration in nanoseconds. Returns `None` (and records nothing) if
    /// the actor has no open span — a tolerated no-op so drivers can
    /// close-if-open at cycle boundaries.
    pub fn exit(&mut self, actor: u32, at: Instant) -> Option<(&'static str, u64)> {
        let (name, opened_at) = self.open.get_mut(&actor)?.pop()?;
        self.closed += 1;
        let dur_ns = at.since(opened_at).as_nanos();
        Some((name, dur_ns))
    }

    /// Number of spans currently open on `actor`.
    pub fn depth(&self, actor: u32) -> usize {
        self.open.get(&actor).map_or(0, Vec::len)
    }

    /// Total spans ever opened.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Total spans closed.
    pub fn closed(&self) -> u64 {
        self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_per_actor() {
        let mut t = SpanTracker::new();
        t.enter(1, "outer", Instant::from_ms(10));
        t.enter(1, "inner", Instant::from_ms(12));
        t.enter(2, "other", Instant::from_ms(11));
        assert_eq!(t.depth(1), 2);
        let (name, dur) = t.exit(1, Instant::from_ms(13)).unwrap();
        assert_eq!(name, "inner");
        assert_eq!(dur, 1_000_000);
        let (name, dur) = t.exit(1, Instant::from_ms(20)).unwrap();
        assert_eq!(name, "outer");
        assert_eq!(dur, 10_000_000);
        assert_eq!(t.exit(1, Instant::from_ms(21)), None);
        assert_eq!(t.depth(2), 1);
        assert_eq!(t.opened(), 3);
        assert_eq!(t.closed(), 2);
    }
}
