//! The per-run collector: one owner for registry + trace + open spans.
//!
//! A [`Telemetry`] value is threaded through a kernel run (or a worker
//! cell) and later merged into a parent collector in deterministic
//! (shard/worker-index) order. Disabled collectors make every recording
//! call a single-branch no-op, which is what the telemetry-off arm of
//! the differential test relies on.

use wile_radio::time::Instant;

use crate::registry::{Label, Registry};
use crate::report::TelemetryReport;
use crate::span::SpanTracker;
use crate::trace::{RunTrace, TraceEvent, TraceKind};

/// Collects metrics, trace events, and spans for one run.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    enabled: bool,
    registry: Registry,
    trace: RunTrace,
    spans: SpanTracker,
}

impl Telemetry {
    /// A disabled collector: every recording call is a no-op.
    pub fn off() -> Self {
        Self::default()
    }

    /// An enabled collector (trace still off — opt in separately, the
    /// event stream is the one unbounded-memory part of telemetry).
    pub fn new() -> Self {
        Telemetry {
            enabled: true,
            ..Self::default()
        }
    }

    /// An enabled collector that also records the event trace.
    pub fn with_trace() -> Self {
        let mut t = Telemetry::new();
        t.trace.set_enabled(true);
        t
    }

    /// Whether this collector records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable collection.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Enable or disable the event trace (independent of metrics).
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the metric registry (flush paths).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The recorded event trace.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Add `n` to a counter (no-op while disabled).
    pub fn inc(&mut self, name: &'static str, labels: &[Label], n: u64) {
        if self.enabled {
            self.registry.inc(name, labels, n);
        }
    }

    /// Record a gauge level (no-op while disabled).
    pub fn gauge_set(&mut self, name: &'static str, labels: &[Label], v: i64) {
        if self.enabled {
            self.registry.gauge_set(name, labels, v);
        }
    }

    /// Record a histogram observation (no-op while disabled).
    pub fn observe(&mut self, name: &'static str, labels: &[Label], v: u64) {
        if self.enabled {
            self.registry.observe(name, labels, v);
        }
    }

    /// Record an actor-emitted `(event, value)` sample into the trace.
    pub fn trace_emit(&mut self, at: Instant, actor: u32, name: &'static str, value: u64) {
        if self.enabled {
            self.trace.push(TraceEvent {
                at,
                actor,
                kind: TraceKind::Emit,
                name,
                value,
            });
        }
    }

    /// Open a span on `actor`; records a trace event and counts it.
    pub fn span_enter(&mut self, at: Instant, actor: u32, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.spans.enter(actor, name, at);
        self.trace.push(TraceEvent {
            at,
            actor,
            kind: TraceKind::SpanEnter,
            name,
            value: self.spans.depth(actor) as u64,
        });
    }

    /// Close the innermost span on `actor`: observes its duration into
    /// the `span_ns{span=<name>}` histogram and traces the exit.
    /// Returns the closed span's name and duration in ns.
    pub fn span_exit(&mut self, at: Instant, actor: u32) -> Option<(&'static str, u64)> {
        if !self.enabled {
            return None;
        }
        let (name, dur_ns) = self.spans.exit(actor, at)?;
        self.registry
            .observe("span_ns", &[("span", name.into())], dur_ns);
        self.trace.push(TraceEvent {
            at,
            actor,
            kind: TraceKind::SpanExit,
            name,
            value: dur_ns,
        });
        Some((name, dur_ns))
    }

    /// Number of spans currently open on `actor`.
    pub fn span_depth(&self, actor: u32) -> usize {
        self.spans.depth(actor)
    }

    /// Fold a child collector in: registries merge instrument-wise,
    /// traces append. Call in shard/worker-index order so trace event
    /// order (the only order-sensitive stream) is reproducible.
    pub fn merge_from(&mut self, other: &Telemetry) {
        if !self.enabled {
            return;
        }
        self.registry.merge_from(&other.registry);
        self.trace.append_from(&other.trace);
    }

    /// Snapshot the deterministic state into a report.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport::from_telemetry(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let mut t = Telemetry::off();
        t.inc("c", &[], 1);
        t.observe("h", &[], 2);
        t.gauge_set("g", &[], 3);
        t.span_enter(Instant::ZERO, 0, "s");
        assert!(t.span_exit(Instant::from_ms(1), 0).is_none());
        t.trace_emit(Instant::ZERO, 0, "e", 4);
        assert!(t.registry().is_empty());
        assert!(t.trace().is_empty());
    }

    #[test]
    fn span_durations_land_in_histogram() {
        let mut t = Telemetry::with_trace();
        t.span_enter(Instant::from_ms(5), 7, "cycle");
        let (name, dur) = t.span_exit(Instant::from_ms(9), 7).unwrap();
        assert_eq!(name, "cycle");
        assert_eq!(dur, 4_000_000);
        let h = t
            .registry()
            .histogram("span_ns", &[("span", "cycle".into())])
            .unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 4_000_000);
        assert_eq!(t.trace().len(), 2);
    }

    #[test]
    fn merge_folds_registry_and_trace() {
        let mut parent = Telemetry::with_trace();
        parent.inc("c", &[], 1);
        let mut child = Telemetry::with_trace();
        child.inc("c", &[], 2);
        child.trace_emit(Instant::ZERO, 1, "e", 9);
        parent.merge_from(&child);
        assert_eq!(parent.registry().counter("c", &[]), Some(3));
        assert_eq!(parent.trace().len(), 1);
    }
}
