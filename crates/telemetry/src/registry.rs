//! The instrument registry: `(name, labels) → instrument`, with
//! deterministic rendering, merging, and digesting.

use std::collections::BTreeMap;
use std::fmt;

use crate::instrument::{Counter, Gauge, Histogram};
use crate::json::Json;

/// A label value: static string or integer (lane indexes, shard ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelValue {
    /// A static string label (e.g. `kind=beacon`).
    Str(&'static str),
    /// A numeric label (e.g. `lane=3`).
    U64(u64),
}

impl fmt::Display for LabelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelValue::Str(s) => f.write_str(s),
            LabelValue::U64(v) => write!(f, "{v}"),
        }
    }
}

impl From<&'static str> for LabelValue {
    fn from(s: &'static str) -> Self {
        LabelValue::Str(s)
    }
}

impl From<u64> for LabelValue {
    fn from(v: u64) -> Self {
        LabelValue::U64(v)
    }
}

impl From<u32> for LabelValue {
    fn from(v: u32) -> Self {
        LabelValue::U64(v as u64)
    }
}

impl From<usize> for LabelValue {
    fn from(v: usize) -> Self {
        LabelValue::U64(v as u64)
    }
}

/// One `key=value` label pair.
pub type Label = (&'static str, LabelValue);

/// An instrument identity: static name plus a small, sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    name: &'static str,
    labels: Vec<Label>,
}

impl Key {
    /// Build a key; labels are sorted by label name so `[("a",..),("b",..)]`
    /// and `[("b",..),("a",..)]` identify the same instrument.
    pub fn new(name: &'static str, labels: &[Label]) -> Self {
        let mut labels = labels.to_vec();
        labels.sort();
        Key { name, labels }
    }

    /// The instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The sorted label set.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// A typed instrument slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Instrument {
    /// Monotonic count.
    Counter(Counter),
    /// Level + high-water mark.
    Gauge(Gauge),
    /// Log-bucketed distribution.
    Histogram(Histogram),
}

/// A deterministic map from [`Key`] to [`Instrument`].
///
/// Backed by a `BTreeMap` so iteration (and hence rendering, JSON, and
/// the digest) is in sorted key order regardless of insertion order.
/// Two registries fed the same observations in any interleaving render
/// byte-identically; see [`Registry::merge_from`] for the shard-merge
/// contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    map: BTreeMap<Key, Instrument>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no instrument has been touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Add `n` to a counter, creating it at zero first if needed.
    pub fn inc(&mut self, name: &'static str, labels: &[Label], n: u64) {
        match self
            .map
            .entry(Key::new(name, labels))
            .or_insert(Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.inc(n),
            other => panic!("instrument '{name}' is not a counter: {other:?}"),
        }
    }

    /// Overwrite a counter with an absolute value (end-of-run flush).
    pub fn counter_set(&mut self, name: &'static str, labels: &[Label], v: u64) {
        match self
            .map
            .entry(Key::new(name, labels))
            .or_insert(Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.set(v),
            other => panic!("instrument '{name}' is not a counter: {other:?}"),
        }
    }

    /// Record a gauge level (tracks the high-water mark).
    pub fn gauge_set(&mut self, name: &'static str, labels: &[Label], v: i64) {
        match self
            .map
            .entry(Key::new(name, labels))
            .or_insert(Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.set(v),
            other => panic!("instrument '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Record a histogram observation.
    pub fn observe(&mut self, name: &'static str, labels: &[Label], v: u64) {
        match self
            .map
            .entry(Key::new(name, labels))
            .or_insert(Instrument::Histogram(Histogram::new()))
        {
            Instrument::Histogram(h) => h.observe(v),
            other => panic!("instrument '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Read a counter back (tests and report plumbing).
    pub fn counter(&self, name: &'static str, labels: &[Label]) -> Option<u64> {
        match self.map.get(&Key::new(name, labels))? {
            Instrument::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Read a gauge back.
    pub fn gauge(&self, name: &'static str, labels: &[Label]) -> Option<&Gauge> {
        match self.map.get(&Key::new(name, labels))? {
            Instrument::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// Read a histogram back.
    pub fn histogram(&self, name: &'static str, labels: &[Label]) -> Option<&Histogram> {
        match self.map.get(&Key::new(name, labels))? {
            Instrument::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Iterate instruments in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Instrument)> {
        self.map.iter()
    }

    /// Fold another registry into this one: counters add, gauges take
    /// maxima, histograms merge element-wise.
    ///
    /// Counter and histogram merges commute, and gauges use max-merge,
    /// so the folded snapshot is independent of *how observations were
    /// partitioned*. Callers still merge per-shard registries in shard
    /// order by convention — it makes the reduction auditable and keeps
    /// the contract honest if an order-sensitive instrument is ever
    /// added.
    ///
    /// # Panics
    /// If the same key holds different instrument types in the two
    /// registries (a static naming bug, not a data condition).
    pub fn merge_from(&mut self, other: &Registry) {
        for (key, theirs) in &other.map {
            match self.map.get_mut(key) {
                None => {
                    self.map.insert(key.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (Instrument::Counter(a), Instrument::Counter(b)) => a.merge(b),
                    (Instrument::Gauge(a), Instrument::Gauge(b)) => a.merge(b),
                    (Instrument::Histogram(a), Instrument::Histogram(b)) => a.merge(b),
                    (mine, theirs) => {
                        panic!("instrument '{key}' type mismatch: {mine:?} vs {theirs:?}")
                    }
                },
            }
        }
    }

    /// Deterministic text rendering: one sorted line per instrument.
    /// Histogram lines list only non-empty buckets as `bN:count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, inst) in &self.map {
            match inst {
                Instrument::Counter(c) => {
                    out.push_str(&format!("counter {key} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!(
                        "gauge   {key} last={} high_water={}\n",
                        g.last(),
                        g.high_water()
                    ));
                }
                Instrument::Histogram(h) => {
                    out.push_str(&format!(
                        "hist    {key} count={} sum={} min={} max={} buckets=[",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                    ));
                    let mut first = true;
                    for (i, &n) in h.buckets().iter().enumerate() {
                        if n > 0 {
                            if !first {
                                out.push(' ');
                            }
                            out.push_str(&format!("b{i}:{n}"));
                            first = false;
                        }
                    }
                    out.push_str("]\n");
                }
            }
        }
        out
    }

    /// JSON form of the registry (sorted instrument array).
    pub fn to_json(&self) -> Json {
        let mut items = Vec::with_capacity(self.map.len());
        for (key, inst) in &self.map {
            let mut labels = Json::obj();
            for (k, v) in key.labels() {
                labels = labels.field(
                    k,
                    match v {
                        LabelValue::Str(s) => Json::str(*s),
                        LabelValue::U64(n) => Json::int(*n),
                    },
                );
            }
            let base = Json::obj()
                .field("name", Json::str(key.name()))
                .field("labels", labels);
            items.push(match inst {
                Instrument::Counter(c) => base
                    .field("type", Json::str("counter"))
                    .field("value", Json::int(c.get())),
                Instrument::Gauge(g) => base
                    .field("type", Json::str("gauge"))
                    .field("last", Json::sint(g.last()))
                    .field("high_water", Json::sint(g.high_water())),
                Instrument::Histogram(h) => {
                    let buckets = h
                        .buckets()
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| Json::Arr(vec![Json::int(i as u64), Json::int(n)]))
                        .collect();
                    base.field("type", Json::str("histogram"))
                        .field("count", Json::int(h.count()))
                        .field("sum", Json::Num(h.sum() as f64))
                        .field("min", Json::int(h.min().unwrap_or(0)))
                        .field("max", Json::int(h.max().unwrap_or(0)))
                        .field("buckets", Json::Arr(buckets))
                }
            });
        }
        Json::Arr(items)
    }

    /// FNV-1a digest of the rendered snapshot — the byte-identity
    /// witness the differential tests compare across worker counts.
    pub fn digest(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

/// FNV-1a over a byte slice (same constants as the scenario digests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_is_normalized() {
        let a = Key::new("x", &[("lane", 1u64.into()), ("kind", "beacon".into())]);
        let b = Key::new("x", &[("kind", "beacon".into()), ("lane", 1u64.into())]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "x{kind=beacon,lane=1}");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.inc("z.last", &[], 1);
        r.inc("a.first", &[("lane", 2u64.into())], 5);
        r.gauge_set("m.depth", &[], 7);
        r.observe("m.hist", &[], 3);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("counter a.first{lane=2} 5"));
        assert!(lines[3].starts_with("counter z.last 1"));
        assert_eq!(r.digest(), r.clone().digest());
    }

    #[test]
    fn merge_matches_single_registry() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let mut whole = Registry::new();
        for i in 0..10u64 {
            let (part, _other) = if i % 2 == 0 {
                (&mut a, &b)
            } else {
                (&mut b, &a)
            };
            part.inc("n", &[], i);
            part.observe("h", &[], i * i);
            part.gauge_set("g", &[], i as i64);
            whole.inc("n", &[], i);
            whole.observe("h", &[], i * i);
            whole.gauge_set("g", &[], i as i64);
        }
        a.merge_from(&b);
        // Gauge last differs (max-merge), so compare render of counters
        // and histograms via digest equality of the whole snapshot:
        // max-merge makes last==9 here too since observations ascend.
        assert_eq!(a.render(), whole.render());
        assert_eq!(a.digest(), whole.digest());
    }

    #[test]
    fn json_shape() {
        let mut r = Registry::new();
        r.inc("c", &[("lane", 0u64.into())], 3);
        let text = r.to_json().render();
        assert_eq!(
            text,
            r#"[{"name":"c","labels":{"lane":0},"type":"counter","value":3}]"#
        );
    }
}
