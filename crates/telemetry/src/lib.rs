//! # wile-telemetry — deterministic metrics, spans, and run traces
//!
//! The observability layer for the Wi-LE reproduction. The paper's
//! argument is quantitative (µJ per packet, frames on air, delivery
//! under contention), so the simulator needs to explain *why* a run
//! behaved as it did without perturbing *what* it did. Everything in
//! this crate is therefore split along one line:
//!
//! **Deterministic** (snapshot-digestable, byte-identical across
//! `WILE_WORKERS` and across telemetry on/off runs):
//! * [`instrument`] — [`Counter`], [`Gauge`] (with high-water mark), and
//!   [`Histogram`] over `u64` values with fixed power-of-two bucket
//!   edges and a `u128` sum, so merging per-worker histograms equals
//!   inserting every observation into one.
//! * [`registry`] — `(static name, sorted label set) → instrument`,
//!   backed by a `BTreeMap` for sorted, stable render/JSON/digest.
//! * [`span`] — nestable enter/exit intervals stamped with *simulated*
//!   time, attributed to an actor or lane.
//! * [`trace`] — [`RunTrace`], an ordered event stream with a
//!   schema-versioned JSONL export ([`RunTrace::to_jsonl`]).
//! * [`report`] — [`TelemetryReport`], the sorted text + JSON snapshot
//!   whose FNV-1a digest is the cross-worker identity witness.
//! * [`collector`] — [`Telemetry`], the per-run owner threaded through
//!   a kernel; disabled collectors cost one branch per call.
//!
//! **Nondeterministic** (wall clock; env-gated via `WILE_PROF=1`;
//! rendered only under a `# nondeterministic` banner, never digested):
//! * [`prof`] — [`ProfScope`] RAII timers and per-site tallies.
//!
//! [`json`] is the one serialization helper shared by the report, the
//! trace, and `wile-instrument`'s figure artifacts.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collector;
pub mod instrument;
pub mod json;
pub mod prof;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use collector::Telemetry;
pub use instrument::{Counter, Gauge, Histogram, HIST_BUCKETS};
pub use json::Json;
pub use prof::{prof_count, prof_enabled, prof_record, prof_report, prof_reset, ProfScope};
pub use registry::{fnv1a, Instrument, Key, Label, LabelValue, Registry};
pub use report::TelemetryReport;
pub use span::SpanTracker;
pub use trace::{RunTrace, TraceEvent, TraceKind, TRACE_SCHEMA, TRACE_VERSION};
