//! Typed instruments: counters, gauges, and log-bucketed histograms.
//!
//! Every instrument is deterministic by construction: values are
//! unsigned integers, histogram sums accumulate in `u128` (integer
//! addition commutes, unlike floating point), and bucket edges are
//! fixed powers of two so a merged snapshot is byte-identical no matter
//! how the observations were split across workers or shards.

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the count.
    pub fn inc(&mut self, n: u64) {
        self.value = self.value.wrapping_add(n);
    }

    /// Overwrite with an absolute value (for end-of-run flushes that
    /// copy a subsystem's internal tally into the registry exactly once).
    pub fn set(&mut self, v: u64) {
        self.value = v;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Fold another counter in (counts add).
    pub fn merge(&mut self, other: &Counter) {
        self.value = self.value.wrapping_add(other.value);
    }
}

/// A point-in-time level plus its high-water mark.
///
/// Merging gauges takes the maximum of both fields so the result is
/// independent of merge order; a gauge therefore answers "how deep did
/// it ever get" rather than "where did it end" once shards are folded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    last: i64,
    high_water: i64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the current level, updating the high-water mark.
    pub fn set(&mut self, v: i64) {
        self.last = v;
        if v > self.high_water {
            self.high_water = v;
        }
    }

    /// Most recently recorded level.
    pub fn last(&self) -> i64 {
        self.last
    }

    /// Highest level ever recorded.
    pub fn high_water(&self) -> i64 {
        self.high_water
    }

    /// Fold another gauge in (both fields take the max, so the merge
    /// commutes).
    pub fn merge(&mut self, other: &Gauge) {
        if other.last > self.last {
            self.last = other.last;
        }
        if other.high_water > self.high_water {
            self.high_water = other.high_water;
        }
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// A histogram over `u64` observations with fixed power-of-two bucket
/// edges.
///
/// Counts, the `u128` sum, and min/max are all invariant under
/// permutation of inserts, and `merge(a, b)` equals inserting every
/// observation into one histogram — the soundness lemma that lets
/// per-worker and per-shard histograms be folded into one snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive `[lo, hi)` range covered by bucket `i`
    /// (bucket 0 is the single value 0; bucket 64's `hi` saturates).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket counts (length [`HIST_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Fold another histogram in: element-wise bucket addition plus
    /// count/sum addition and min/max widening. Equivalent to having
    /// inserted every one of `other`'s observations here.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_set_merge() {
        let mut c = Counter::new();
        c.inc(3);
        c.inc(4);
        assert_eq!(c.get(), 7);
        c.set(100);
        assert_eq!(c.get(), 100);
        let mut d = Counter::new();
        d.inc(1);
        d.merge(&c);
        assert_eq!(d.get(), 101);
    }

    #[test]
    fn gauge_tracks_high_water_and_merges_commutatively() {
        let mut g = Gauge::new();
        g.set(5);
        g.set(2);
        assert_eq!(g.last(), 2);
        assert_eq!(g.high_water(), 5);
        let mut h = Gauge::new();
        h.set(9);
        h.set(1);
        let mut ab = g;
        ab.merge(&h);
        let mut ba = h;
        ba.merge(&g);
        assert_eq!(ab, ba);
        assert_eq!(ab.high_water(), 9);
    }

    #[test]
    fn histogram_buckets_cover_u64() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_of(lo), i);
            if i < 64 {
                assert!(hi == 1 || Histogram::bucket_of(hi - 1) == i);
            }
        }
    }

    #[test]
    fn histogram_observe_and_stats() {
        let mut h = Histogram::new();
        assert!(h.min().is_none());
        for v in [0u64, 1, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
    }

    #[test]
    fn histogram_merge_equals_insert_all() {
        let xs = [3u64, 0, 7, 7, 1 << 40, 255];
        let ys = [9u64, 2, 1 << 63];
        let mut a = Histogram::new();
        for &v in &xs {
            a.observe(v);
        }
        let mut b = Histogram::new();
        for &v in &ys {
            b.observe(v);
        }
        let mut all = Histogram::new();
        for &v in xs.iter().chain(&ys) {
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
