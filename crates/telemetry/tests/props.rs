//! Property tests for the deterministic histogram: its snapshot must
//! be a pure function of the observed *multiset* — insertion order
//! must never show, and merging partial histograms must equal
//! observing everything into one. These are exactly the properties the
//! worker-count differential test leans on (per-shard registries merge
//! in shard order, but each shard's content varies with scheduling of
//! nothing — only the partition).

use proptest::prelude::*;
use wile_telemetry::Histogram;

fn observed(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// Deterministic in-place shuffle (splitmix64-driven Fisher–Yates) so
/// the permutation is derived from a proptest-provided seed.
fn shuffle(values: &mut [u64], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..values.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        values.swap(i, j);
    }
}

proptest! {
    /// Bucket counts, sum, count, min, and max are invariant under any
    /// permutation of the inserts.
    #[test]
    fn snapshot_is_permutation_invariant(
        values in proptest::collection::vec(any::<u64>(), 0..200),
        seed in any::<u64>(),
    ) {
        let base = observed(&values);
        let mut shuffled = values.clone();
        shuffle(&mut shuffled, seed);
        let permuted = observed(&shuffled);
        prop_assert_eq!(base.buckets(), permuted.buckets());
        prop_assert_eq!(base.count(), permuted.count());
        prop_assert_eq!(base.sum(), permuted.sum());
        prop_assert_eq!(base.min(), permuted.min());
        prop_assert_eq!(base.max(), permuted.max());
    }

    /// merge(observe(a), observe(b)) == observe(a ++ b), for any split.
    #[test]
    fn merge_equals_insert_all(
        a in proptest::collection::vec(any::<u64>(), 0..150),
        b in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let mut merged = observed(&a);
        merged.merge(&observed(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let whole = observed(&all);
        prop_assert_eq!(merged.buckets(), whole.buckets());
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
    }

    /// Every observation lands in the bucket whose range covers it, the
    /// total bucket population equals the count, and the sum is exact
    /// (u128: no rounding, no overflow at u64 values).
    #[test]
    fn buckets_cover_and_account_for_everything(
        values in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = observed(&values);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), values.iter().copied().min());
        prop_assert_eq!(h.max(), values.iter().copied().max());
        for &v in &values {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_of(v));
            prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }
}
