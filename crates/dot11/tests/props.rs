//! Property-based tests for the 802.11 codec: round-trips hold for all
//! valid inputs, and no parser panics on arbitrary bytes.

use proptest::prelude::*;
use wile_dot11::ctrl::CtrlFrame;
use wile_dot11::data::DataFrame;
use wile_dot11::eapol::KeyFrame;
use wile_dot11::fcs;
use wile_dot11::ie;
use wile_dot11::mac::{MacAddr, SeqControl};
use wile_dot11::mgmt::{
    AssocReq, AssocReqBuilder, Beacon, BeaconBuilder, ProbeReq, ProbeReqBuilder,
};
use wile_dot11::phy::{frame_airtime_us, PhyRate};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_rate() -> impl Strategy<Value = PhyRate> {
    prop::sample::select(PhyRate::all())
}

proptest! {
    #[test]
    fn fcs_round_trip(body in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut frame = body.clone();
        fcs::append_fcs(&mut frame);
        prop_assert!(fcs::check_fcs(&frame));
        prop_assert_eq!(fcs::strip_fcs(&frame), Some(&body[..]));
    }

    #[test]
    fn fcs_detects_any_single_bit_flip(
        body in prop::collection::vec(any::<u8>(), 1..128),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut frame = body;
        fcs::append_fcs(&mut frame);
        let i = byte_idx.index(frame.len());
        frame[i] ^= 1 << bit;
        prop_assert!(!fcs::check_fcs(&frame));
    }

    #[test]
    fn seq_control_round_trip(seq in 0u16..4096, frag in 0u8..16) {
        let sc = SeqControl::new(seq, frag);
        prop_assert_eq!(sc.seq(), seq);
        prop_assert_eq!(sc.frag(), frag);
        let sc2 = SeqControl::from_le_bytes(sc.to_le_bytes());
        prop_assert_eq!(sc, sc2);
    }

    #[test]
    fn beacon_round_trip(
        bssid in arb_mac(),
        ts in any::<u64>(),
        interval in 1u16..1000,
        ssid in prop::collection::vec(any::<u8>(), 0..32),
        payload in prop::collection::vec(any::<u8>(), 0..200),
        vtype in any::<u8>(),
        oui in any::<[u8; 3]>(),
    ) {
        let frame = BeaconBuilder::new(bssid)
            .timestamp(ts)
            .interval_tu(interval)
            .ssid(&ssid)
            .vendor_specific(oui, vtype, &payload)
            .build();
        let b = Beacon::new_checked(&frame[..]).unwrap();
        prop_assert_eq!(b.bssid(), bssid);
        prop_assert_eq!(b.timestamp(), ts);
        prop_assert_eq!(b.beacon_interval_tu(), interval);
        if ssid.is_empty() {
            prop_assert!(b.is_hidden_ssid());
        } else {
            prop_assert_eq!(b.ssid().unwrap(), Some(&ssid[..]));
        }
        prop_assert_eq!(b.vendor_payload(oui, vtype), Some(&payload[..]));
    }

    #[test]
    fn beacon_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Beacon::new_checked(&bytes[..]);
    }

    #[test]
    fn ie_iterator_never_panics_and_terminates(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Bounded iteration: at most len/2 + 1 elements possible.
        let n = ie::Elements::new(&bytes).count();
        prop_assert!(n <= bytes.len() / 2 + 1);
    }

    #[test]
    fn ie_push_then_iterate_recovers_all(
        elements in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..255)),
            0..8
        )
    ) {
        let mut body = Vec::new();
        for (id, data) in &elements {
            ie::push(&mut body, ie::ElementId::from_u8(*id), data).unwrap();
        }
        let parsed: Vec<_> = ie::Elements::new(&body).map(|e| e.unwrap()).collect();
        prop_assert_eq!(parsed.len(), elements.len());
        for (p, (id, data)) in parsed.iter().zip(&elements) {
            prop_assert_eq!(p.id.to_u8(), *id);
            prop_assert_eq!(p.data, &data[..]);
        }
    }

    #[test]
    fn probe_and_assoc_round_trip(
        sta in arb_mac(),
        ap in arb_mac(),
        ssid in prop::collection::vec(any::<u8>(), 0..32),
        li in any::<u16>(),
    ) {
        let p = ProbeReqBuilder::new(sta, &ssid).build();
        let parsed = ProbeReq::new_checked(&p[..]).unwrap();
        prop_assert_eq!(parsed.sta(), sta);
        prop_assert_eq!(parsed.ssid().unwrap(), &ssid[..]);

        let a = AssocReqBuilder::new(sta, ap, &ssid).listen_interval(li).build();
        let parsed = AssocReq::new_checked(&a[..]).unwrap();
        prop_assert_eq!(parsed.listen_interval(), li);
        prop_assert_eq!(parsed.ssid().unwrap(), &ssid[..]);
    }

    #[test]
    fn ctrl_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = CtrlFrame::parse(&bytes);
    }

    #[test]
    fn data_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = DataFrame::new_checked(&bytes[..]);
    }

    #[test]
    fn eapol_round_trip(
        info_bits in any::<u16>(),
        replay in any::<u64>(),
        nonce in any::<[u8; 32]>(),
        key_data in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut f = KeyFrame::pairwise(info_bits & 0x1FF0);
        f.replay_counter = replay;
        f.nonce = nonce;
        f.key_data = key_data;
        let parsed = KeyFrame::parse(&f.to_bytes()).unwrap();
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn eapol_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = KeyFrame::parse(&bytes);
    }

    #[test]
    fn airtime_positive_and_monotone(rate in arb_rate(), len in 1usize..2304) {
        let t = frame_airtime_us(rate, len);
        prop_assert!(t > 0);
        prop_assert!(frame_airtime_us(rate, len + 100) >= t);
    }

    #[test]
    fn airtime_roughly_matches_rate(rate in arb_rate(), len in 200usize..2304) {
        // Payload time (airtime minus preamble bound of 192 µs) must be
        // within 2x of bits/rate (symbol padding, service bits).
        let t_us = frame_airtime_us(rate, len) as f64;
        let ideal_us = (len as f64 * 8.0) / (rate.kbps() as f64 / 1000.0);
        prop_assert!(t_us + 1.0 >= ideal_us, "{t_us} < {ideal_us}");
        prop_assert!(t_us <= ideal_us * 2.0 + 230.0, "{t_us} vs {ideal_us}");
    }

    #[test]
    fn channel_overlap_is_symmetric_and_reflexive(a in 0u8..=200, b in 0u8..=200) {
        use wile_dot11::phy::channels::{centre_freq_mhz, channels_overlap};
        prop_assert_eq!(channels_overlap(a, b), channels_overlap(b, a));
        if centre_freq_mhz(a).is_some() {
            prop_assert!(channels_overlap(a, a));
        } else {
            prop_assert!(!channels_overlap(a, a));
        }
    }

    #[test]
    fn channel_frequencies_monotone_within_band(a in 1u8..=13, b in 1u8..=13) {
        use wile_dot11::phy::channels::centre_freq_mhz;
        prop_assume!(a < b);
        prop_assert!(centre_freq_mhz(a).unwrap() < centre_freq_mhz(b).unwrap());
    }

    #[test]
    fn mac_addr_string_round_trip(octets in any::<[u8; 6]>()) {
        let a = MacAddr::new(octets);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<MacAddr>().unwrap(), a);
    }
}
