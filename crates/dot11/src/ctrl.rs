//! Control frames: ACK, RTS, CTS, PS-Poll.
//!
//! ACKs matter for energy accounting — every unicast management and data
//! frame in the association exchange is acknowledged, and the paper counts
//! those ACKs among the "at least 20 MAC-layer frames" of §3.1. PS-Poll is
//! how a power-saving client retrieves frames the TIM says are buffered.

use crate::error::{Error, Result};
use crate::fcs;
use crate::mac::{CtrlSubtype, FrameControl, MacAddr};

/// Length of an ACK/CTS MPDU including FCS.
pub const ACK_LEN: usize = 14;
/// Length of an RTS/PS-Poll MPDU including FCS.
pub const RTS_LEN: usize = 20;

/// Build an ACK for the station `ra` (the transmitter being acknowledged).
pub fn build_ack(ra: MacAddr) -> Vec<u8> {
    build_short(CtrlSubtype::Ack, 0, ra)
}

/// Build a CTS addressed to `ra` reserving the medium for `duration_us`.
pub fn build_cts(ra: MacAddr, duration_us: u16) -> Vec<u8> {
    build_short(CtrlSubtype::Cts, duration_us, ra)
}

fn build_short(st: CtrlSubtype, duration: u16, ra: MacAddr) -> Vec<u8> {
    let mut out = Vec::with_capacity(ACK_LEN);
    out.extend_from_slice(&FrameControl::ctrl(st).to_le_bytes());
    out.extend_from_slice(&duration.to_le_bytes());
    out.extend_from_slice(&ra.octets());
    fcs::append_fcs(&mut out);
    out
}

/// Build an RTS from `ta` to `ra` reserving `duration_us`.
pub fn build_rts(ta: MacAddr, ra: MacAddr, duration_us: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(RTS_LEN);
    out.extend_from_slice(&FrameControl::ctrl(CtrlSubtype::Rts).to_le_bytes());
    out.extend_from_slice(&duration_us.to_le_bytes());
    out.extend_from_slice(&ra.octets());
    out.extend_from_slice(&ta.octets());
    fcs::append_fcs(&mut out);
    out
}

/// Build a PS-Poll: the power-saving station `ta` (holding association id
/// `aid`) asks the AP `ra` to release one buffered frame.
pub fn build_ps_poll(ta: MacAddr, ra: MacAddr, aid: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(RTS_LEN);
    out.extend_from_slice(&FrameControl::ctrl(CtrlSubtype::PsPoll).to_le_bytes());
    // In PS-Poll the duration field carries the AID with both MSBs set.
    out.extend_from_slice(&(aid | 0xC000).to_le_bytes());
    out.extend_from_slice(&ra.octets());
    out.extend_from_slice(&ta.octets());
    fcs::append_fcs(&mut out);
    out
}

/// Decoded view of any control frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlFrame {
    /// Which control frame this is.
    pub subtype: CtrlSubtype,
    /// Receiver address.
    pub ra: MacAddr,
    /// Transmitter address (absent on ACK/CTS).
    pub ta: Option<MacAddr>,
    /// Raw duration/ID field.
    pub duration: u16,
}

impl CtrlFrame {
    /// Parse a control frame (FCS optional: verified and stripped when the
    /// trailing bytes form a valid FCS).
    pub fn parse(frame: &[u8]) -> Result<Self> {
        let body = fcs::strip_fcs(frame).unwrap_or(frame);
        if body.len() < 10 {
            return Err(Error::Truncated);
        }
        let fc = FrameControl::from_le_bytes([body[0], body[1]]);
        let subtype = fc.ctrl_subtype()?;
        let duration = u16::from_le_bytes([body[2], body[3]]);
        let ra = MacAddr::from_slice(&body[4..10])?;
        let ta = if body.len() >= 16 {
            Some(MacAddr::from_slice(&body[10..16])?)
        } else {
            None
        };
        Ok(CtrlFrame {
            subtype,
            ra,
            ta,
            duration,
        })
    }

    /// For PS-Poll frames, the association ID carried in the duration field.
    pub fn aid(&self) -> Option<u16> {
        (self.subtype == CtrlSubtype::PsPoll).then_some(self.duration & 0x3FFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, 5])
    }
    fn ap() -> MacAddr {
        MacAddr::new([0xAA, 0, 0, 0, 0, 1])
    }

    #[test]
    fn ack_layout() {
        let f = build_ack(sta());
        assert_eq!(f.len(), ACK_LEN);
        let p = CtrlFrame::parse(&f).unwrap();
        assert_eq!(p.subtype, CtrlSubtype::Ack);
        assert_eq!(p.ra, sta());
        assert_eq!(p.ta, None);
        assert_eq!(p.duration, 0);
    }

    #[test]
    fn rts_cts_round_trip() {
        let rts = build_rts(sta(), ap(), 132);
        let p = CtrlFrame::parse(&rts).unwrap();
        assert_eq!(p.subtype, CtrlSubtype::Rts);
        assert_eq!(p.ra, ap());
        assert_eq!(p.ta, Some(sta()));
        assert_eq!(p.duration, 132);

        let cts = build_cts(sta(), 100);
        let p = CtrlFrame::parse(&cts).unwrap();
        assert_eq!(p.subtype, CtrlSubtype::Cts);
        assert_eq!(p.duration, 100);
    }

    #[test]
    fn ps_poll_carries_aid() {
        let f = build_ps_poll(sta(), ap(), 7);
        let p = CtrlFrame::parse(&f).unwrap();
        assert_eq!(p.subtype, CtrlSubtype::PsPoll);
        assert_eq!(p.aid(), Some(7));
        assert_eq!(p.ta, Some(sta()));
    }

    #[test]
    fn aid_only_meaningful_for_ps_poll() {
        let p = CtrlFrame::parse(&build_ack(sta())).unwrap();
        assert_eq!(p.aid(), None);
    }

    #[test]
    fn parse_without_fcs() {
        let f = build_ack(sta());
        let p = CtrlFrame::parse(&f[..f.len() - 4]).unwrap();
        assert_eq!(p.subtype, CtrlSubtype::Ack);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            CtrlFrame::parse(&[0xD4, 0x00, 0, 0]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn non_ctrl_rejected() {
        // A beacon's frame control word.
        let mut f = vec![0x80, 0x00, 0, 0];
        f.extend_from_slice(&[0u8; 12]);
        assert_eq!(CtrlFrame::parse(&f).unwrap_err(), Error::WrongType);
    }
}
