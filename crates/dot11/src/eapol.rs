//! EAPOL-Key frames — the four messages of the WPA2-PSK handshake that
//! §3.1 of the paper counts in the connection-establishment cost ("at
//! least 8 frames are exchanged during this process", i.e. 4 EAPOL-Key
//! messages plus their ACKs).
//!
//! Layout (IEEE 802.1X-2010 + 802.11i): a 4-byte EAPOL header followed by
//! a 95-byte EAPOL-Key descriptor body and variable key data.

use crate::error::{Error, Result};

/// EAPOL protocol version used here (802.1X-2004).
pub const EAPOL_VERSION: u8 = 2;
/// EAPOL packet type for key frames.
pub const EAPOL_TYPE_KEY: u8 = 3;
/// Descriptor type for RSN (WPA2) key descriptors.
pub const DESCRIPTOR_RSN: u8 = 2;
/// Fixed length of the EAPOL-Key body (without the EAPOL header and
/// without key data).
pub const KEY_BODY_LEN: usize = 95;
/// Total fixed length: EAPOL header + key body.
pub const KEY_FRAME_MIN: usize = 4 + KEY_BODY_LEN;

/// Key information bits (only the ones the 4-way handshake uses).
pub mod key_info {
    /// This key frame concerns the pairwise (unicast) key.
    pub const KEY_TYPE_PAIRWISE: u16 = 1 << 3;
    /// Supplicant should install the derived temporal key.
    pub const INSTALL: u16 = 1 << 6;
    /// Authenticator expects a reply (messages 1 and 3).
    pub const KEY_ACK: u16 = 1 << 7;
    /// The MIC field is present and must verify (messages 2–4).
    pub const KEY_MIC: u16 = 1 << 8;
    /// The link is secure once this exchange completes.
    pub const SECURE: u16 = 1 << 9;
    /// Key data field is encrypted (message 3 carries a wrapped GTK).
    pub const ENCRYPTED_KEY_DATA: u16 = 1 << 12;
    /// Key descriptor version 2 (HMAC-SHA1 MIC, AES key wrap).
    pub const VERSION_HMAC_SHA1: u16 = 2;
}

/// Owned representation of an EAPOL-Key frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyFrame {
    /// Key information field (see [`key_info`]).
    pub info: u16,
    /// Pairwise key length (16 for CCMP).
    pub key_length: u16,
    /// Monotonic replay counter; the supplicant echoes the last value.
    pub replay_counter: u64,
    /// ANonce (messages 1/3) or SNonce (message 2).
    pub nonce: [u8; 32],
    /// EAPOL key IV (zero for descriptor version 2).
    pub iv: [u8; 16],
    /// Receive sequence counter for the GTK.
    pub rsc: u64,
    /// Message integrity code over the whole EAPOL frame with this field
    /// zeroed. Computed by `wile-crypto`'s HMAC-SHA1 in `wile-netstack`.
    pub mic: [u8; 16],
    /// Key data (RSN IE, wrapped GTK, …).
    pub key_data: Vec<u8>,
}

impl KeyFrame {
    /// A blank pairwise key frame with the given flags.
    pub fn pairwise(info_flags: u16) -> Self {
        KeyFrame {
            info: info_flags | key_info::KEY_TYPE_PAIRWISE | key_info::VERSION_HMAC_SHA1,
            key_length: 16,
            replay_counter: 0,
            nonce: [0; 32],
            iv: [0; 16],
            rsc: 0,
            mic: [0; 16],
            key_data: Vec::new(),
        }
    }

    /// Serialize to a complete EAPOL frame (ready for LLC/SNAP
    /// encapsulation under EtherType 0x888E).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body_len = KEY_BODY_LEN + self.key_data.len();
        let mut out = Vec::with_capacity(4 + body_len);
        out.push(EAPOL_VERSION);
        out.push(EAPOL_TYPE_KEY);
        out.extend_from_slice(&(body_len as u16).to_be_bytes());
        out.push(DESCRIPTOR_RSN);
        out.extend_from_slice(&self.info.to_be_bytes());
        out.extend_from_slice(&self.key_length.to_be_bytes());
        out.extend_from_slice(&self.replay_counter.to_be_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.iv);
        out.extend_from_slice(&self.rsc.to_be_bytes());
        out.extend_from_slice(&[0u8; 8]); // reserved Key ID
        out.extend_from_slice(&self.mic);
        out.extend_from_slice(&(self.key_data.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.key_data);
        out
    }

    /// Serialize with the MIC field zeroed — the byte string the MIC is
    /// computed over.
    pub fn to_bytes_zero_mic(&self) -> Vec<u8> {
        let mut clone = self.clone();
        clone.mic = [0; 16];
        clone.to_bytes()
    }

    /// Parse a complete EAPOL frame.
    pub fn parse(b: &[u8]) -> Result<Self> {
        if b.len() < KEY_FRAME_MIN {
            return Err(Error::Truncated);
        }
        if b[1] != EAPOL_TYPE_KEY {
            return Err(Error::WrongType);
        }
        let body_len = u16::from_be_bytes([b[2], b[3]]) as usize;
        if 4 + body_len > b.len() || body_len < KEY_BODY_LEN {
            return Err(Error::BadLength);
        }
        let d = &b[4..4 + body_len];
        if d[0] != DESCRIPTOR_RSN {
            return Err(Error::BadValue);
        }
        let key_data_len = u16::from_be_bytes([d[93], d[94]]) as usize;
        if KEY_BODY_LEN + key_data_len != body_len {
            return Err(Error::BadLength);
        }
        Ok(KeyFrame {
            info: u16::from_be_bytes([d[1], d[2]]),
            key_length: u16::from_be_bytes([d[3], d[4]]),
            replay_counter: u64::from_be_bytes(d[5..13].try_into().unwrap()),
            nonce: d[13..45].try_into().unwrap(),
            iv: d[45..61].try_into().unwrap(),
            rsc: u64::from_be_bytes(d[61..69].try_into().unwrap()),
            mic: d[77..93].try_into().unwrap(),
            key_data: d[95..].to_vec(),
        })
    }

    /// True when this frame expects an acknowledging reply (set by the
    /// authenticator in messages 1 and 3).
    pub fn wants_ack(&self) -> bool {
        self.info & key_info::KEY_ACK != 0
    }

    /// True when the MIC field is meaningful (messages 2, 3 and 4).
    pub fn has_mic(&self) -> bool {
        self.info & key_info::KEY_MIC != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_key_data() {
        let mut f = KeyFrame::pairwise(key_info::KEY_ACK);
        f.replay_counter = 7;
        f.nonce = [0xAB; 32];
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), KEY_FRAME_MIN);
        let parsed = KeyFrame::parse(&bytes).unwrap();
        assert_eq!(parsed, f);
        assert!(parsed.wants_ack());
        assert!(!parsed.has_mic());
    }

    #[test]
    fn round_trip_with_key_data() {
        let mut f = KeyFrame::pairwise(key_info::KEY_MIC | key_info::SECURE);
        f.key_data = vec![0x30, 0x14, 1, 2, 3];
        f.mic = [0xCD; 16];
        let bytes = f.to_bytes();
        let parsed = KeyFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.key_data, f.key_data);
        assert_eq!(parsed.mic, f.mic);
        assert!(parsed.has_mic());
    }

    #[test]
    fn zero_mic_serialization_differs_only_in_mic() {
        let mut f = KeyFrame::pairwise(key_info::KEY_MIC);
        f.mic = [0xEE; 16];
        let a = f.to_bytes();
        let b = f.to_bytes_zero_mic();
        assert_eq!(a.len(), b.len());
        let diff: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
        // MIC occupies bytes 81..97 of the full frame (4 hdr + 77 offset).
        assert!(diff.iter().all(|&i| (81..97).contains(&i)));
        assert!(!diff.is_empty());
    }

    #[test]
    fn truncated_rejected() {
        let f = KeyFrame::pairwise(0).to_bytes();
        assert_eq!(
            KeyFrame::parse(&f[..KEY_FRAME_MIN - 1]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn wrong_packet_type_rejected() {
        let mut f = KeyFrame::pairwise(0).to_bytes();
        f[1] = 0; // EAP-Packet
        assert_eq!(KeyFrame::parse(&f).unwrap_err(), Error::WrongType);
    }

    #[test]
    fn inconsistent_key_data_length_rejected() {
        let mut f = KeyFrame::pairwise(0);
        f.key_data = vec![1, 2, 3, 4];
        let mut bytes = f.to_bytes();
        // Lie about the key data length.
        let off = 4 + 93;
        bytes[off] = 0;
        bytes[off + 1] = 1;
        assert_eq!(KeyFrame::parse(&bytes).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn wrong_descriptor_rejected() {
        let mut bytes = KeyFrame::pairwise(0).to_bytes();
        bytes[4] = 254;
        assert_eq!(KeyFrame::parse(&bytes).unwrap_err(), Error::BadValue);
    }
}
