//! The 24-byte MAC header shared by management and (non-QoS) data frames,
//! plus the 16-bit sequence control field.

use crate::error::{Error, Result};
use crate::mac::{FrameControl, MacAddr};

/// Length of the management/data MAC header, bytes.
pub const MGMT_HEADER_LEN: usize = 24;

/// The 16-bit sequence control field: a 4-bit fragment number and a
/// 12-bit sequence number.
///
/// ```
/// use wile_dot11::mac::SeqControl;
/// let sc = SeqControl::new(4095, 3);
/// assert_eq!(sc.seq(), 4095);
/// assert_eq!(sc.frag(), 3);
/// // Sequence numbers wrap at 4096.
/// assert_eq!(sc.next_seq().seq(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeqControl(pub u16);

impl SeqControl {
    /// Build from a sequence number (0..4096) and fragment number (0..16).
    /// Out-of-range values are masked.
    pub fn new(seq: u16, frag: u8) -> Self {
        SeqControl(((seq & 0x0FFF) << 4) | (frag as u16 & 0x0F))
    }

    /// The 12-bit sequence number.
    pub fn seq(self) -> u16 {
        self.0 >> 4
    }

    /// The 4-bit fragment number.
    pub fn frag(self) -> u8 {
        (self.0 & 0x0F) as u8
    }

    /// The sequence control of the next MSDU (fragment number reset,
    /// sequence number incremented modulo 4096).
    pub fn next_seq(self) -> Self {
        SeqControl::new((self.seq() + 1) & 0x0FFF, 0)
    }

    /// Wire encoding, little-endian.
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Parse from wire bytes.
    pub fn from_le_bytes(b: [u8; 2]) -> Self {
        SeqControl(u16::from_le_bytes(b))
    }
}

/// Zero-copy view of a frame that starts with the standard 24-byte header:
/// frame control, duration/ID, three addresses, sequence control.
///
/// For management frames: addr1 = DA (receiver), addr2 = SA (transmitter),
/// addr3 = BSSID. A Wi-LE beacon sets addr1 = broadcast and
/// addr2 = addr3 = the injecting device's address.
#[derive(Debug, Clone)]
pub struct MgmtHeader<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> MgmtHeader<T> {
    /// Wrap a buffer, verifying it is long enough to hold the header.
    pub fn new_checked(buf: T) -> Result<Self> {
        if buf.as_ref().len() < MGMT_HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(MgmtHeader { buf })
    }

    /// The frame control field.
    pub fn frame_control(&self) -> FrameControl {
        let b = self.buf.as_ref();
        FrameControl::from_le_bytes([b[0], b[1]])
    }

    /// The duration/ID field (microseconds of medium reservation, or an
    /// association ID in PS-Poll frames).
    pub fn duration(&self) -> u16 {
        let b = self.buf.as_ref();
        u16::from_le_bytes([b[2], b[3]])
    }

    /// Address 1 — the receiver address.
    pub fn addr1(&self) -> MacAddr {
        MacAddr::from_slice(&self.buf.as_ref()[4..10]).unwrap()
    }

    /// Address 2 — the transmitter address.
    pub fn addr2(&self) -> MacAddr {
        MacAddr::from_slice(&self.buf.as_ref()[10..16]).unwrap()
    }

    /// Address 3 — the BSSID for management frames.
    pub fn addr3(&self) -> MacAddr {
        MacAddr::from_slice(&self.buf.as_ref()[16..22]).unwrap()
    }

    /// The sequence control field.
    pub fn seq_control(&self) -> SeqControl {
        let b = self.buf.as_ref();
        SeqControl::from_le_bytes([b[22], b[23]])
    }

    /// The frame body following the header (FCS not stripped).
    pub fn body(&self) -> &[u8] {
        &self.buf.as_ref()[MGMT_HEADER_LEN..]
    }

    /// Consume the wrapper, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buf
    }
}

/// Serialize a 24-byte MAC header into `out`.
pub fn push_header(
    out: &mut Vec<u8>,
    fc: FrameControl,
    duration: u16,
    addr1: MacAddr,
    addr2: MacAddr,
    addr3: MacAddr,
    seq: SeqControl,
) {
    out.extend_from_slice(&fc.to_le_bytes());
    out.extend_from_slice(&duration.to_le_bytes());
    out.extend_from_slice(&addr1.octets());
    out.extend_from_slice(&addr2.octets());
    out.extend_from_slice(&addr3.octets());
    out.extend_from_slice(&seq.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MgmtSubtype;

    fn sample_header() -> Vec<u8> {
        let mut v = Vec::new();
        push_header(
            &mut v,
            FrameControl::mgmt(MgmtSubtype::Beacon),
            0,
            MacAddr::BROADCAST,
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            SeqControl::new(17, 0),
        );
        v
    }

    #[test]
    fn header_round_trip() {
        let v = sample_header();
        assert_eq!(v.len(), MGMT_HEADER_LEN);
        let h = MgmtHeader::new_checked(&v[..]).unwrap();
        assert_eq!(
            h.frame_control().mgmt_subtype().unwrap(),
            MgmtSubtype::Beacon
        );
        assert_eq!(h.duration(), 0);
        assert!(h.addr1().is_broadcast());
        assert_eq!(h.addr2(), MacAddr::new([2, 0, 0, 0, 0, 1]));
        assert_eq!(h.addr3(), h.addr2());
        assert_eq!(h.seq_control().seq(), 17);
        assert!(h.body().is_empty());
    }

    #[test]
    fn truncated_header_rejected() {
        let v = sample_header();
        assert!(MgmtHeader::new_checked(&v[..23]).is_err());
        assert!(MgmtHeader::new_checked(&[][..]).is_err());
    }

    #[test]
    fn seq_control_masks_out_of_range() {
        let sc = SeqControl::new(0xFFFF, 0xFF);
        assert_eq!(sc.seq(), 0x0FFF);
        assert_eq!(sc.frag(), 0x0F);
    }

    #[test]
    fn seq_control_wire_order() {
        // seq=1, frag=0 -> 0x0010 -> bytes [0x10, 0x00]
        assert_eq!(SeqControl::new(1, 0).to_le_bytes(), [0x10, 0x00]);
    }

    #[test]
    fn next_seq_resets_fragment() {
        let sc = SeqControl::new(9, 5);
        let n = sc.next_seq();
        assert_eq!(n.seq(), 10);
        assert_eq!(n.frag(), 0);
    }

    #[test]
    fn body_is_everything_after_header() {
        let mut v = sample_header();
        v.extend_from_slice(b"payload");
        let h = MgmtHeader::new_checked(&v[..]).unwrap();
        assert_eq!(h.body(), b"payload");
    }
}
