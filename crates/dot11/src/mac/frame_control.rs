//! The 16-bit frame control field at the start of every 802.11 frame.

use crate::error::{Error, Result};

macro_rules! flag_accessors {
    ($get:ident, $set:ident, $bit:expr, $doc:expr) => {
        #[doc = $doc]
        pub fn $get(self) -> bool {
            self.0 & (1 << $bit) != 0
        }

        #[doc = concat!("Setter for: ", $doc)]
        pub fn $set(mut self, on: bool) -> Self {
            if on {
                self.0 |= 1 << $bit;
            } else {
                self.0 &= !(1 << $bit);
            }
            self
        }
    };
}

/// The four top-level 802.11 frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Management frames: beacons, probes, authentication, association…
    Management,
    /// Control frames: ACK, RTS, CTS, PS-Poll…
    Control,
    /// Data frames (including QoS data and null data).
    Data,
    /// 802.11ad+ extension frames (not used here, parsed for completeness).
    Extension,
}

impl FrameType {
    /// Wire encoding (bits 2–3 of frame control).
    pub fn to_bits(self) -> u16 {
        match self {
            FrameType::Management => 0,
            FrameType::Control => 1,
            FrameType::Data => 2,
            FrameType::Extension => 3,
        }
    }

    /// Decode from bits 2–3 of frame control.
    pub fn from_bits(bits: u16) -> Self {
        match bits & 0b11 {
            0 => FrameType::Management,
            1 => FrameType::Control,
            2 => FrameType::Data,
            _ => FrameType::Extension,
        }
    }
}

/// Management frame subtypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MgmtSubtype {
    AssocReq,
    AssocResp,
    ReassocReq,
    ReassocResp,
    ProbeReq,
    ProbeResp,
    TimingAdvertisement,
    Beacon,
    Atim,
    Disassoc,
    Auth,
    Deauth,
    Action,
    ActionNoAck,
}

impl MgmtSubtype {
    /// Wire encoding (bits 4–7 of frame control).
    pub fn to_bits(self) -> u16 {
        match self {
            MgmtSubtype::AssocReq => 0,
            MgmtSubtype::AssocResp => 1,
            MgmtSubtype::ReassocReq => 2,
            MgmtSubtype::ReassocResp => 3,
            MgmtSubtype::ProbeReq => 4,
            MgmtSubtype::ProbeResp => 5,
            MgmtSubtype::TimingAdvertisement => 6,
            MgmtSubtype::Beacon => 8,
            MgmtSubtype::Atim => 9,
            MgmtSubtype::Disassoc => 10,
            MgmtSubtype::Auth => 11,
            MgmtSubtype::Deauth => 12,
            MgmtSubtype::Action => 13,
            MgmtSubtype::ActionNoAck => 14,
        }
    }

    /// Decode from bits 4–7 of frame control.
    pub fn from_bits(bits: u16) -> Result<Self> {
        Ok(match bits & 0b1111 {
            0 => MgmtSubtype::AssocReq,
            1 => MgmtSubtype::AssocResp,
            2 => MgmtSubtype::ReassocReq,
            3 => MgmtSubtype::ReassocResp,
            4 => MgmtSubtype::ProbeReq,
            5 => MgmtSubtype::ProbeResp,
            6 => MgmtSubtype::TimingAdvertisement,
            8 => MgmtSubtype::Beacon,
            9 => MgmtSubtype::Atim,
            10 => MgmtSubtype::Disassoc,
            11 => MgmtSubtype::Auth,
            12 => MgmtSubtype::Deauth,
            13 => MgmtSubtype::Action,
            14 => MgmtSubtype::ActionNoAck,
            _ => return Err(Error::BadValue),
        })
    }
}

/// Control frame subtypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CtrlSubtype {
    BlockAckReq,
    BlockAck,
    PsPoll,
    Rts,
    Cts,
    Ack,
    CfEnd,
    CfEndCfAck,
}

impl CtrlSubtype {
    /// Wire encoding (bits 4–7 of frame control).
    pub fn to_bits(self) -> u16 {
        match self {
            CtrlSubtype::BlockAckReq => 8,
            CtrlSubtype::BlockAck => 9,
            CtrlSubtype::PsPoll => 10,
            CtrlSubtype::Rts => 11,
            CtrlSubtype::Cts => 12,
            CtrlSubtype::Ack => 13,
            CtrlSubtype::CfEnd => 14,
            CtrlSubtype::CfEndCfAck => 15,
        }
    }

    /// Decode from bits 4–7 of frame control.
    pub fn from_bits(bits: u16) -> Result<Self> {
        Ok(match bits & 0b1111 {
            8 => CtrlSubtype::BlockAckReq,
            9 => CtrlSubtype::BlockAck,
            10 => CtrlSubtype::PsPoll,
            11 => CtrlSubtype::Rts,
            12 => CtrlSubtype::Cts,
            13 => CtrlSubtype::Ack,
            14 => CtrlSubtype::CfEnd,
            15 => CtrlSubtype::CfEndCfAck,
            _ => return Err(Error::BadValue),
        })
    }
}

/// Data frame subtypes (the subset in use plus null frames, which the
/// 802.11 power-save protocol uses to signal sleep transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DataSubtype {
    Data,
    Null,
    QosData,
    QosNull,
}

impl DataSubtype {
    /// Wire encoding (bits 4–7 of frame control).
    pub fn to_bits(self) -> u16 {
        match self {
            DataSubtype::Data => 0,
            DataSubtype::Null => 4,
            DataSubtype::QosData => 8,
            DataSubtype::QosNull => 12,
        }
    }

    /// Decode from bits 4–7 of frame control.
    pub fn from_bits(bits: u16) -> Result<Self> {
        Ok(match bits & 0b1111 {
            0 => DataSubtype::Data,
            4 => DataSubtype::Null,
            8 => DataSubtype::QosData,
            12 => DataSubtype::QosNull,
            _ => return Err(Error::BadValue),
        })
    }

    /// True for subtypes that carry no frame body.
    pub fn is_null(self) -> bool {
        matches!(self, DataSubtype::Null | DataSubtype::QosNull)
    }

    /// True for subtypes that carry a QoS control field.
    pub fn is_qos(self) -> bool {
        matches!(self, DataSubtype::QosData | DataSubtype::QosNull)
    }
}

/// Decoded view of the 16-bit frame control field.
///
/// Stored in wire byte order internally; accessors decode on demand.
///
/// ```
/// use wile_dot11::mac::{FrameControl, FrameType, MgmtSubtype};
/// let fc = FrameControl::mgmt(MgmtSubtype::Beacon);
/// assert_eq!(fc.frame_type(), FrameType::Management);
/// assert_eq!(fc.mgmt_subtype().unwrap(), MgmtSubtype::Beacon);
/// assert_eq!(fc.to_le_bytes(), [0x80, 0x00]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameControl(pub u16);

impl FrameControl {
    /// Build a management frame control word with all flags clear.
    pub fn mgmt(subtype: MgmtSubtype) -> Self {
        FrameControl((FrameType::Management.to_bits() << 2) | (subtype.to_bits() << 4))
    }

    /// Build a control frame control word with all flags clear.
    pub fn ctrl(subtype: CtrlSubtype) -> Self {
        FrameControl((FrameType::Control.to_bits() << 2) | (subtype.to_bits() << 4))
    }

    /// Build a data frame control word with all flags clear.
    pub fn data(subtype: DataSubtype) -> Self {
        FrameControl((FrameType::Data.to_bits() << 2) | (subtype.to_bits() << 4))
    }

    /// Parse from the first two bytes of a frame.
    pub fn from_le_bytes(b: [u8; 2]) -> Self {
        FrameControl(u16::from_le_bytes(b))
    }

    /// Wire encoding, little-endian.
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Protocol version (bits 0–1); always 0 in deployed 802.11.
    pub fn protocol_version(self) -> u8 {
        (self.0 & 0b11) as u8
    }

    /// The top-level frame type.
    pub fn frame_type(self) -> FrameType {
        FrameType::from_bits(self.0 >> 2)
    }

    /// Raw 4-bit subtype field.
    pub fn subtype_bits(self) -> u16 {
        (self.0 >> 4) & 0b1111
    }

    /// Decode the subtype as a management subtype.
    pub fn mgmt_subtype(self) -> Result<MgmtSubtype> {
        if self.frame_type() != FrameType::Management {
            return Err(Error::WrongType);
        }
        MgmtSubtype::from_bits(self.subtype_bits())
    }

    /// Decode the subtype as a control subtype.
    pub fn ctrl_subtype(self) -> Result<CtrlSubtype> {
        if self.frame_type() != FrameType::Control {
            return Err(Error::WrongType);
        }
        CtrlSubtype::from_bits(self.subtype_bits())
    }

    /// Decode the subtype as a data subtype.
    pub fn data_subtype(self) -> Result<DataSubtype> {
        if self.frame_type() != FrameType::Data {
            return Err(Error::WrongType);
        }
        DataSubtype::from_bits(self.subtype_bits())
    }

    flag_accessors!(
        to_ds,
        set_to_ds,
        8,
        "To-DS: frame is headed to the distribution system (client→AP)."
    );
    flag_accessors!(
        from_ds,
        set_from_ds,
        9,
        "From-DS: frame comes from the distribution system (AP→client)."
    );
    flag_accessors!(
        more_fragments,
        set_more_fragments,
        10,
        "More fragments of the current MSDU follow."
    );
    flag_accessors!(retry, set_retry, 11, "This frame is a retransmission.");
    flag_accessors!(power_mgmt, set_power_mgmt, 12, "Sender will enter power-save mode after this exchange — the bit the 802.11 PS protocol pivots on.");
    flag_accessors!(
        more_data,
        set_more_data,
        13,
        "AP has more buffered frames for this client (read during PS wakeups)."
    );
    flag_accessors!(protected, set_protected, 14, "Frame body is encrypted.");
    flag_accessors!(
        order,
        set_order,
        15,
        "Strictly-ordered service class / +HTC."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_frame_control_is_0x8000() {
        // The canonical first two bytes of every beacon frame.
        assert_eq!(
            FrameControl::mgmt(MgmtSubtype::Beacon).to_le_bytes(),
            [0x80, 0x00]
        );
    }

    #[test]
    fn ack_frame_control_is_0xd400() {
        assert_eq!(
            FrameControl::ctrl(CtrlSubtype::Ack).to_le_bytes(),
            [0xD4, 0x00]
        );
    }

    #[test]
    fn pspoll_frame_control_is_0xa400() {
        assert_eq!(
            FrameControl::ctrl(CtrlSubtype::PsPoll).to_le_bytes(),
            [0xA4, 0x00]
        );
    }

    #[test]
    fn qos_data_to_ds() {
        let fc = FrameControl::data(DataSubtype::QosData).set_to_ds(true);
        assert_eq!(fc.to_le_bytes(), [0x88, 0x01]);
        assert!(fc.to_ds());
        assert!(!fc.from_ds());
    }

    #[test]
    fn all_mgmt_subtypes_round_trip() {
        use MgmtSubtype::*;
        for st in [
            AssocReq,
            AssocResp,
            ReassocReq,
            ReassocResp,
            ProbeReq,
            ProbeResp,
            TimingAdvertisement,
            Beacon,
            Atim,
            Disassoc,
            Auth,
            Deauth,
            Action,
            ActionNoAck,
        ] {
            let fc = FrameControl::mgmt(st);
            assert_eq!(fc.mgmt_subtype().unwrap(), st);
            assert_eq!(fc.frame_type(), FrameType::Management);
        }
    }

    #[test]
    fn all_ctrl_subtypes_round_trip() {
        use CtrlSubtype::*;
        for st in [
            BlockAckReq,
            BlockAck,
            PsPoll,
            Rts,
            Cts,
            Ack,
            CfEnd,
            CfEndCfAck,
        ] {
            assert_eq!(FrameControl::ctrl(st).ctrl_subtype().unwrap(), st);
        }
    }

    #[test]
    fn all_data_subtypes_round_trip() {
        use DataSubtype::*;
        for st in [Data, Null, QosData, QosNull] {
            assert_eq!(FrameControl::data(st).data_subtype().unwrap(), st);
        }
        assert!(Null.is_null());
        assert!(QosNull.is_null() && QosNull.is_qos());
        assert!(!Data.is_qos());
    }

    #[test]
    fn wrong_type_rejected() {
        let fc = FrameControl::mgmt(MgmtSubtype::Beacon);
        assert_eq!(fc.ctrl_subtype(), Err(Error::WrongType));
        assert_eq!(fc.data_subtype(), Err(Error::WrongType));
    }

    #[test]
    fn reserved_mgmt_subtype_rejected() {
        // Subtype 7 is reserved for management frames.
        let fc = FrameControl((FrameType::Management.to_bits() << 2) | (7 << 4));
        assert_eq!(fc.mgmt_subtype(), Err(Error::BadValue));
    }

    #[test]
    fn flags_set_and_clear() {
        let fc = FrameControl::data(DataSubtype::Null)
            .set_power_mgmt(true)
            .set_retry(true);
        assert!(fc.power_mgmt() && fc.retry());
        let fc = fc.set_power_mgmt(false);
        assert!(!fc.power_mgmt() && fc.retry());
    }

    #[test]
    fn parse_from_wire_bytes() {
        let fc = FrameControl::from_le_bytes([0x80, 0x00]);
        assert_eq!(fc.mgmt_subtype().unwrap(), MgmtSubtype::Beacon);
        assert_eq!(fc.protocol_version(), 0);
    }
}
