//! IEEE 802 48-bit MAC addresses.

use crate::error::{Error, Result};
use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// ```
/// use wile_dot11::MacAddr;
/// let a: MacAddr = "02:d0:17:1e:00:01".parse().unwrap();
/// assert!(a.is_locally_administered());
/// assert!(a.is_unicast());
/// assert_eq!(a.to_string(), "02:d0:17:1e:00:01");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff` — the receiver address of
    /// every beacon frame, including injected Wi-LE beacons.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// The all-zero address (used as a placeholder before assignment).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Parse from a 6-byte slice.
    pub fn from_slice(b: &[u8]) -> Result<Self> {
        if b.len() < 6 {
            return Err(Error::Truncated);
        }
        Ok(MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]]))
    }

    /// True when the individual/group bit is clear.
    pub const fn is_unicast(&self) -> bool {
        self.0[0] & 0x01 == 0
    }

    /// True when the individual/group bit is set (includes broadcast).
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for `ff:ff:ff:ff:ff:ff`.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True when the universal/local bit is set. Wi-LE devices use locally
    /// administered addresses so they can never collide with real vendors.
    pub const fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The 24-bit organizationally unique identifier (first three octets).
    pub const fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// Derive a deterministic locally-administered unicast address from a
    /// 32-bit device identifier. Used by the Wi-LE device registry.
    pub const fn from_device_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddr([0x02, 0x1E, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl FromStr for MacAddr {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let mut octets = [0u8; 6];
        let mut parts = s.split([':', '-']);
        for o in octets.iter_mut() {
            let p = parts.next().ok_or(Error::BadValue)?;
            *o = u8::from_str_radix(p, 16).map_err(|_| Error::BadValue)?;
        }
        if parts.next().is_some() {
            return Err(Error::BadValue);
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "00:11:22:33:44:55",
            "ff:ff:ff:ff:ff:ff",
            "02:d0:17:1e:00:01",
        ] {
            let a: MacAddr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn parse_dash_separated() {
        let a: MacAddr = "00-11-22-33-44-55".parse().unwrap();
        assert_eq!(a.octets(), [0, 0x11, 0x22, 0x33, 0x44, 0x55]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("zz:11:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
    }

    #[test]
    fn from_slice_checks_length() {
        assert_eq!(MacAddr::from_slice(&[1, 2, 3]), Err(Error::Truncated));
        assert!(MacAddr::from_slice(&[1, 2, 3, 4, 5, 6, 7]).is_ok());
    }

    #[test]
    fn device_id_addresses_are_local_unicast_and_distinct() {
        let a = MacAddr::from_device_id(1);
        let b = MacAddr::from_device_id(2);
        assert_ne!(a, b);
        for m in [a, b, MacAddr::from_device_id(u32::MAX)] {
            assert!(m.is_locally_administered());
            assert!(m.is_unicast());
        }
    }

    #[test]
    fn oui_extraction() {
        let a: MacAddr = "d0:17:1e:00:00:07".parse().unwrap();
        assert_eq!(a.oui(), [0xD0, 0x17, 0x1E]);
    }
}
