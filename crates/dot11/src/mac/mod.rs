//! MAC-layer primitives: addresses, frame control, headers.

pub mod addr;
pub mod frame_control;
pub mod header;

pub use addr::MacAddr;
pub use frame_control::{CtrlSubtype, DataSubtype, FrameControl, FrameType, MgmtSubtype};
pub use header::{MgmtHeader, SeqControl, MGMT_HEADER_LEN};
