//! Data frames with LLC/SNAP encapsulation.
//!
//! During connection establishment the client sends DHCP (UDP/IP), ARP and
//! EAPOL payloads inside data frames; Wi-LE never sends one. Null data
//! frames signal power-save transitions to the AP.

use crate::error::{Error, Result};
use crate::fcs;
use crate::mac::{
    self, DataSubtype, FrameControl, MacAddr, MgmtHeader, SeqControl, MGMT_HEADER_LEN,
};

/// LLC/SNAP header length preceding every encapsulated payload.
pub const LLC_SNAP_LEN: usize = 8;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// EtherType for EAPOL (802.1X port access entity).
pub const ETHERTYPE_EAPOL: u16 = 0x888E;

/// Build a complete (non-QoS) data MPDU carrying `payload` under the given
/// EtherType, client → AP (`to_ds` set).
pub fn build_data_to_ap(
    sta: MacAddr,
    ap: MacAddr,
    dest: MacAddr,
    ethertype: u16,
    payload: &[u8],
    seq: SeqControl,
) -> Vec<u8> {
    let fc = FrameControl::data(DataSubtype::Data).set_to_ds(true);
    // To-DS addressing: addr1 = BSSID, addr2 = SA, addr3 = DA.
    build_data(fc, ap, sta, dest, ethertype, payload, seq)
}

/// Build a complete data MPDU AP → client (`from_ds` set).
pub fn build_data_from_ap(
    ap: MacAddr,
    sta: MacAddr,
    src: MacAddr,
    ethertype: u16,
    payload: &[u8],
    seq: SeqControl,
) -> Vec<u8> {
    let fc = FrameControl::data(DataSubtype::Data).set_from_ds(true);
    // From-DS addressing: addr1 = DA, addr2 = BSSID, addr3 = SA.
    build_data(fc, sta, ap, src, ethertype, payload, seq)
}

fn build_data(
    fc: FrameControl,
    addr1: MacAddr,
    addr2: MacAddr,
    addr3: MacAddr,
    ethertype: u16,
    payload: &[u8],
    seq: SeqControl,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(MGMT_HEADER_LEN + LLC_SNAP_LEN + payload.len() + 4);
    mac::header::push_header(&mut out, fc, 0, addr1, addr2, addr3, seq);
    push_llc_snap(&mut out, ethertype);
    out.extend_from_slice(payload);
    fcs::append_fcs(&mut out);
    out
}

/// Build a null data frame used to signal a power-management transition:
/// `pm` true tells the AP "I am going to sleep, buffer my traffic".
pub fn build_null(sta: MacAddr, ap: MacAddr, pm: bool, seq: SeqControl) -> Vec<u8> {
    let fc = FrameControl::data(DataSubtype::Null)
        .set_to_ds(true)
        .set_power_mgmt(pm);
    let mut out = Vec::with_capacity(MGMT_HEADER_LEN + 4);
    mac::header::push_header(&mut out, fc, 0, ap, sta, ap, seq);
    fcs::append_fcs(&mut out);
    out
}

/// Append the 802.2 LLC + SNAP header (`AA AA 03 00 00 00` + EtherType).
pub fn push_llc_snap(out: &mut Vec<u8>, ethertype: u16) {
    out.extend_from_slice(&[0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00]);
    out.extend_from_slice(&ethertype.to_be_bytes());
}

/// Zero-copy view of a data frame.
#[derive(Debug, Clone)]
pub struct DataFrame<T: AsRef<[u8]>> {
    buf: T,
    body_end: usize,
}

impl<T: AsRef<[u8]>> DataFrame<T> {
    /// Wrap and validate (FCS optional).
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        let subtype = hdr.frame_control().data_subtype()?;
        let body_end = if fcs::check_fcs(b) {
            b.len() - crate::FCS_LEN
        } else {
            b.len()
        };
        if !subtype.is_null() && body_end < MGMT_HEADER_LEN + LLC_SNAP_LEN {
            return Err(Error::Truncated);
        }
        Ok(DataFrame { buf, body_end })
    }

    /// The MAC header.
    pub fn header(&self) -> MgmtHeader<&[u8]> {
        MgmtHeader::new_checked(&self.buf.as_ref()[..self.body_end]).unwrap()
    }

    /// The data subtype.
    pub fn subtype(&self) -> DataSubtype {
        self.header().frame_control().data_subtype().unwrap()
    }

    /// The EtherType from the LLC/SNAP header (`None` for null frames).
    pub fn ethertype(&self) -> Option<u16> {
        if self.subtype().is_null() {
            return None;
        }
        let b = &self.buf.as_ref()[MGMT_HEADER_LEN..self.body_end];
        Some(u16::from_be_bytes([b[6], b[7]]))
    }

    /// The encapsulated payload after LLC/SNAP (`None` for null frames).
    pub fn payload(&self) -> Option<&[u8]> {
        if self.subtype().is_null() {
            return None;
        }
        Some(&self.buf.as_ref()[MGMT_HEADER_LEN + LLC_SNAP_LEN..self.body_end])
    }

    /// Source address: addr2 (to-DS), addr3 (from-DS) or addr2 otherwise.
    pub fn source(&self) -> MacAddr {
        let h = self.header();
        if h.frame_control().from_ds() {
            h.addr3()
        } else {
            h.addr2()
        }
    }

    /// Destination address: addr3 (to-DS), addr1 otherwise.
    pub fn dest(&self) -> MacAddr {
        let h = self.header();
        if h.frame_control().to_ds() {
            h.addr3()
        } else {
            h.addr1()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, 5])
    }
    fn ap() -> MacAddr {
        MacAddr::new([0xAA, 0, 0, 0, 0, 1])
    }

    #[test]
    fn to_ap_round_trip() {
        let f = build_data_to_ap(
            sta(),
            ap(),
            MacAddr::BROADCAST,
            ETHERTYPE_ARP,
            b"arp!",
            SeqControl::new(1, 0),
        );
        let d = DataFrame::new_checked(&f[..]).unwrap();
        assert_eq!(d.subtype(), DataSubtype::Data);
        assert_eq!(d.ethertype(), Some(ETHERTYPE_ARP));
        assert_eq!(d.payload(), Some(&b"arp!"[..]));
        assert_eq!(d.source(), sta());
        assert_eq!(d.dest(), MacAddr::BROADCAST);
        assert!(d.header().frame_control().to_ds());
    }

    #[test]
    fn from_ap_round_trip() {
        let f = build_data_from_ap(
            ap(),
            sta(),
            MacAddr::new([9; 6]),
            ETHERTYPE_IPV4,
            b"ip",
            SeqControl::new(2, 0),
        );
        let d = DataFrame::new_checked(&f[..]).unwrap();
        assert_eq!(d.source(), MacAddr::new([9; 6]));
        assert_eq!(d.dest(), sta());
        assert!(d.header().frame_control().from_ds());
    }

    #[test]
    fn eapol_ethertype() {
        let f = build_data_to_ap(
            sta(),
            ap(),
            ap(),
            ETHERTYPE_EAPOL,
            &[1, 2, 3],
            SeqControl::new(0, 0),
        );
        let d = DataFrame::new_checked(&f[..]).unwrap();
        assert_eq!(d.ethertype(), Some(ETHERTYPE_EAPOL));
    }

    #[test]
    fn null_frame_signals_power_mgmt() {
        let f = build_null(sta(), ap(), true, SeqControl::new(3, 0));
        let d = DataFrame::new_checked(&f[..]).unwrap();
        assert_eq!(d.subtype(), DataSubtype::Null);
        assert!(d.header().frame_control().power_mgmt());
        assert_eq!(d.ethertype(), None);
        assert_eq!(d.payload(), None);
    }

    #[test]
    fn null_frame_is_minimal() {
        let f = build_null(sta(), ap(), false, SeqControl::new(0, 0));
        assert_eq!(f.len(), MGMT_HEADER_LEN + 4);
    }

    #[test]
    fn truncated_data_rejected() {
        let f = build_data_to_ap(
            sta(),
            ap(),
            ap(),
            ETHERTYPE_IPV4,
            b"",
            SeqControl::new(0, 0),
        );
        assert!(DataFrame::new_checked(&f[..MGMT_HEADER_LEN + 3]).is_err());
    }

    #[test]
    fn llc_snap_bytes() {
        let mut v = Vec::new();
        push_llc_snap(&mut v, 0x0800);
        assert_eq!(v, [0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00]);
    }

    #[test]
    fn mgmt_frame_rejected() {
        use crate::mgmt::BeaconBuilder;
        let f = BeaconBuilder::new(sta()).hidden_ssid().build();
        assert!(DataFrame::new_checked(&f[..]).is_err());
    }
}
