//! Deauthentication frames (also used for disassociation bodies, which
//! share the 2-byte reason-code layout).

use crate::error::{Error, Result};
use crate::fcs;
use crate::mac::{
    self, FrameControl, MacAddr, MgmtHeader, MgmtSubtype, SeqControl, MGMT_HEADER_LEN,
};

/// 802.11 reason codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasonCode {
    /// Unspecified reason.
    Unspecified,
    /// Sender is leaving (the code a duty-cycled client uses when it
    /// disconnects before deep sleep — the WiFi-DC scenario).
    DeauthLeaving,
    /// Disassociated due to inactivity: what an AP sends when a client
    /// stops listening without power-save protection (§3.2).
    Inactivity,
    /// Any other code, preserved verbatim.
    Other(u16),
}

impl ReasonCode {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            ReasonCode::Unspecified => 1,
            ReasonCode::DeauthLeaving => 3,
            ReasonCode::Inactivity => 4,
            ReasonCode::Other(v) => v,
        }
    }

    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => ReasonCode::Unspecified,
            3 => ReasonCode::DeauthLeaving,
            4 => ReasonCode::Inactivity,
            other => ReasonCode::Other(other),
        }
    }
}

/// Zero-copy view of a deauthentication frame.
#[derive(Debug, Clone)]
pub struct Deauth<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> Deauth<T> {
    /// Wrap and validate (FCS optional).
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        if hdr.frame_control().mgmt_subtype() != Ok(MgmtSubtype::Deauth) {
            return Err(Error::WrongType);
        }
        if b.len() < MGMT_HEADER_LEN + 2 {
            return Err(Error::Truncated);
        }
        Ok(Deauth { buf })
    }

    /// The stated reason.
    pub fn reason(&self) -> ReasonCode {
        let b = &self.buf.as_ref()[MGMT_HEADER_LEN..];
        ReasonCode::from_u16(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Sender address.
    pub fn sender(&self) -> MacAddr {
        MgmtHeader::new_checked(self.buf.as_ref()).unwrap().addr2()
    }
}

/// Builder for deauthentication frames.
#[derive(Debug, Clone)]
pub struct DeauthBuilder {
    dest: MacAddr,
    src: MacAddr,
    bssid: MacAddr,
    reason: ReasonCode,
    seq: SeqControl,
}

impl DeauthBuilder {
    /// Deauthenticate: `src` tells `dest` it is gone. `bssid` is the
    /// network both belong(ed) to.
    pub fn new(src: MacAddr, dest: MacAddr, bssid: MacAddr, reason: ReasonCode) -> Self {
        DeauthBuilder {
            dest,
            src,
            bssid,
            reason,
            seq: SeqControl::new(0, 0),
        }
    }

    /// Set the sequence control field.
    pub fn seq(mut self, seq: SeqControl) -> Self {
        self.seq = seq;
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::new();
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::Deauth),
            0,
            self.dest,
            self.src,
            self.bssid,
            self.seq,
        );
        out.extend_from_slice(&self.reason.to_u16().to_le_bytes());
        fcs::append_fcs(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let sta = MacAddr::new([2, 0, 0, 0, 0, 5]);
        let ap = MacAddr::new([0xAA, 0, 0, 0, 0, 1]);
        let frame = DeauthBuilder::new(sta, ap, ap, ReasonCode::DeauthLeaving).build();
        let d = Deauth::new_checked(&frame[..]).unwrap();
        assert_eq!(d.reason(), ReasonCode::DeauthLeaving);
        assert_eq!(d.sender(), sta);
        assert!(fcs::check_fcs(&frame));
    }

    #[test]
    fn reason_round_trip() {
        for r in [
            ReasonCode::Unspecified,
            ReasonCode::DeauthLeaving,
            ReasonCode::Inactivity,
            ReasonCode::Other(99),
        ] {
            assert_eq!(ReasonCode::from_u16(r.to_u16()), r);
        }
    }

    #[test]
    fn too_short_rejected() {
        let sta = MacAddr::ZERO;
        let frame = DeauthBuilder::new(sta, sta, sta, ReasonCode::Unspecified).build();
        assert_eq!(
            Deauth::new_checked(&frame[..MGMT_HEADER_LEN + 1]).unwrap_err(),
            Error::Truncated
        );
    }
}
