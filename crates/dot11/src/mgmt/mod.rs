//! Management frame bodies and builders.
//!
//! All builders emit complete MPDUs (24-byte MAC header + body + FCS) ready
//! to hand to the simulated medium; all parsers are zero-copy wrappers.

mod assoc;
mod auth;
mod beacon;
mod deauth;
mod probe;

pub use assoc::{AssocReq, AssocReqBuilder, AssocResp, AssocRespBuilder};
pub use auth::{Auth, AuthAlgorithm, AuthBuilder, StatusCode};
pub use beacon::{Beacon, BeaconBuilder, CapabilityInfo, BEACON_FIXED_LEN};
pub use deauth::{Deauth, DeauthBuilder, ReasonCode};
pub use probe::{ProbeReq, ProbeReqBuilder, ProbeRespBuilder};
