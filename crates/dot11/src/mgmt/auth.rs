//! Authentication frames (open-system two-frame exchange).

use crate::error::{Error, Result};
use crate::fcs;
use crate::mac::{
    self, FrameControl, MacAddr, MgmtHeader, MgmtSubtype, SeqControl, MGMT_HEADER_LEN,
};

/// Authentication algorithm numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthAlgorithm {
    /// Open system (the only one modern WPA2 networks use at this stage;
    /// the real key proof happens later in the 4-way handshake).
    OpenSystem,
    /// Legacy WEP shared key.
    SharedKey,
    /// Simultaneous authentication of equals (WPA3).
    Sae,
}

impl AuthAlgorithm {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            AuthAlgorithm::OpenSystem => 0,
            AuthAlgorithm::SharedKey => 1,
            AuthAlgorithm::Sae => 3,
        }
    }

    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Result<Self> {
        Ok(match v {
            0 => AuthAlgorithm::OpenSystem,
            1 => AuthAlgorithm::SharedKey,
            3 => AuthAlgorithm::Sae,
            _ => return Err(Error::BadValue),
        })
    }
}

/// 802.11 status codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// Operation succeeded.
    Success,
    /// Unspecified failure.
    Failure,
    /// The AP cannot support all requested capabilities.
    CapsUnsupported,
    /// Association denied: the AP is at capacity.
    ApFull,
    /// Any other code, preserved verbatim.
    Other(u16),
}

impl StatusCode {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            StatusCode::Success => 0,
            StatusCode::Failure => 1,
            StatusCode::CapsUnsupported => 10,
            StatusCode::ApFull => 17,
            StatusCode::Other(v) => v,
        }
    }

    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0 => StatusCode::Success,
            1 => StatusCode::Failure,
            10 => StatusCode::CapsUnsupported,
            17 => StatusCode::ApFull,
            other => StatusCode::Other(other),
        }
    }

    /// True for [`StatusCode::Success`].
    pub fn is_success(self) -> bool {
        matches!(self, StatusCode::Success)
    }
}

/// Zero-copy view of an authentication frame.
#[derive(Debug, Clone)]
pub struct Auth<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> Auth<T> {
    /// Wrap and validate (FCS optional).
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        if hdr.frame_control().mgmt_subtype() != Ok(MgmtSubtype::Auth) {
            return Err(Error::WrongType);
        }
        let body_len = if fcs::check_fcs(b) {
            b.len() - crate::FCS_LEN - MGMT_HEADER_LEN
        } else {
            b.len() - MGMT_HEADER_LEN
        };
        if body_len < 6 {
            return Err(Error::Truncated);
        }
        Ok(Auth { buf })
    }

    fn body(&self) -> &[u8] {
        &self.buf.as_ref()[MGMT_HEADER_LEN..]
    }

    /// Sender address.
    pub fn sender(&self) -> MacAddr {
        MgmtHeader::new_checked(self.buf.as_ref()).unwrap().addr2()
    }

    /// The authentication algorithm in use.
    pub fn algorithm(&self) -> Result<AuthAlgorithm> {
        let b = self.body();
        AuthAlgorithm::from_u16(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Transaction sequence number (1 = request, 2 = response for
    /// open-system).
    pub fn transaction_seq(&self) -> u16 {
        let b = self.body();
        u16::from_le_bytes([b[2], b[3]])
    }

    /// Status code (meaningful in responses).
    pub fn status(&self) -> StatusCode {
        let b = self.body();
        StatusCode::from_u16(u16::from_le_bytes([b[4], b[5]]))
    }
}

/// Builder for authentication frames.
#[derive(Debug, Clone)]
pub struct AuthBuilder {
    dest: MacAddr,
    src: MacAddr,
    bssid: MacAddr,
    algorithm: AuthAlgorithm,
    transaction_seq: u16,
    status: StatusCode,
    seq: SeqControl,
}

impl AuthBuilder {
    /// An open-system authentication *request* from `sta` to `ap`.
    pub fn request(sta: MacAddr, ap: MacAddr) -> Self {
        AuthBuilder {
            dest: ap,
            src: sta,
            bssid: ap,
            algorithm: AuthAlgorithm::OpenSystem,
            transaction_seq: 1,
            status: StatusCode::Success,
            seq: SeqControl::new(0, 0),
        }
    }

    /// An open-system authentication *response* from `ap` to `sta`.
    pub fn response(ap: MacAddr, sta: MacAddr, status: StatusCode) -> Self {
        AuthBuilder {
            dest: sta,
            src: ap,
            bssid: ap,
            algorithm: AuthAlgorithm::OpenSystem,
            transaction_seq: 2,
            status,
            seq: SeqControl::new(0, 0),
        }
    }

    /// Set the sequence control field.
    pub fn seq(mut self, seq: SeqControl) -> Self {
        self.seq = seq;
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::new();
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::Auth),
            0,
            self.dest,
            self.src,
            self.bssid,
            self.seq,
        );
        out.extend_from_slice(&self.algorithm.to_u16().to_le_bytes());
        out.extend_from_slice(&self.transaction_seq.to_le_bytes());
        out.extend_from_slice(&self.status.to_u16().to_le_bytes());
        fcs::append_fcs(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, 5])
    }
    fn ap() -> MacAddr {
        MacAddr::new([0xAA, 0, 0, 0, 0, 1])
    }

    #[test]
    fn request_round_trip() {
        let frame = AuthBuilder::request(sta(), ap()).build();
        let a = Auth::new_checked(&frame[..]).unwrap();
        assert_eq!(a.algorithm().unwrap(), AuthAlgorithm::OpenSystem);
        assert_eq!(a.transaction_seq(), 1);
        assert_eq!(a.sender(), sta());
        assert!(a.status().is_success());
    }

    #[test]
    fn response_carries_status() {
        let frame = AuthBuilder::response(ap(), sta(), StatusCode::ApFull).build();
        let a = Auth::new_checked(&frame[..]).unwrap();
        assert_eq!(a.transaction_seq(), 2);
        assert_eq!(a.status(), StatusCode::ApFull);
        assert!(!a.status().is_success());
    }

    #[test]
    fn status_code_round_trip() {
        for code in [
            StatusCode::Success,
            StatusCode::Failure,
            StatusCode::CapsUnsupported,
            StatusCode::ApFull,
            StatusCode::Other(55),
        ] {
            assert_eq!(StatusCode::from_u16(code.to_u16()), code);
        }
    }

    #[test]
    fn algorithm_round_trip_and_reserved() {
        for alg in [
            AuthAlgorithm::OpenSystem,
            AuthAlgorithm::SharedKey,
            AuthAlgorithm::Sae,
        ] {
            assert_eq!(AuthAlgorithm::from_u16(alg.to_u16()).unwrap(), alg);
        }
        assert_eq!(AuthAlgorithm::from_u16(2), Err(Error::BadValue));
    }

    #[test]
    fn truncated_body_rejected() {
        let frame = AuthBuilder::request(sta(), ap()).build();
        // Header + 5 body bytes and no FCS: too short.
        assert_eq!(
            Auth::new_checked(&frame[..MGMT_HEADER_LEN + 5]).unwrap_err(),
            Error::Truncated
        );
    }
}
