//! Beacon frames — the frame type Wi-LE injects.
//!
//! A beacon body is: 8-byte TSF timestamp, 2-byte beacon interval (in
//! 1024 µs time units), 2-byte capability information, then information
//! elements. [`BeaconBuilder`] produces both ordinary AP beacons and the
//! hidden-SSID, vendor-IE-bearing fake beacons of §4 of the paper.

use crate::error::{Error, Result};
use crate::fcs;
use crate::ie::{self, ElementId, Tim};
use crate::mac::{
    self, FrameControl, MacAddr, MgmtHeader, MgmtSubtype, SeqControl, MGMT_HEADER_LEN,
};

/// Length of the fixed (non-IE) part of a beacon body, bytes.
pub const BEACON_FIXED_LEN: usize = 12;

/// The 16-bit capability information field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilityInfo(pub u16);

impl CapabilityInfo {
    /// ESS bit: set by infrastructure APs (and by Wi-LE fake beacons, to
    /// look like an ordinary AP to the receiver's scan path).
    pub const ESS: u16 = 1 << 0;
    /// IBSS bit: set by ad-hoc networks.
    pub const IBSS: u16 = 1 << 1;
    /// Privacy bit: encryption required.
    pub const PRIVACY: u16 = 1 << 4;

    /// Capability of a plain open-system AP.
    pub fn ap_open() -> Self {
        CapabilityInfo(Self::ESS)
    }

    /// Capability of a WPA2 AP.
    pub fn ap_wpa2() -> Self {
        CapabilityInfo(Self::ESS | Self::PRIVACY)
    }

    /// Check a capability bit.
    pub fn has(self, bit: u16) -> bool {
        self.0 & bit != 0
    }
}

/// Zero-copy view of a complete beacon MPDU (header + body; FCS optional).
#[derive(Debug, Clone)]
pub struct Beacon<T: AsRef<[u8]>> {
    buf: T,
    body_end: usize,
}

impl<T: AsRef<[u8]>> Beacon<T> {
    /// Wrap a frame that may still carry its FCS. The FCS, when present
    /// and valid, is excluded from the body; an invalid FCS is an error.
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        if hdr.frame_control().mgmt_subtype() != Ok(MgmtSubtype::Beacon) {
            return Err(Error::WrongType);
        }
        if b.len() < MGMT_HEADER_LEN + BEACON_FIXED_LEN {
            return Err(Error::Truncated);
        }
        // Accept frames both with and without a trailing FCS: the simulated
        // medium delivers whole MPDUs, while templates are built FCS-less.
        let body_end = if fcs::check_fcs(b) {
            b.len() - crate::FCS_LEN
        } else {
            b.len()
        };
        if body_end < MGMT_HEADER_LEN + BEACON_FIXED_LEN {
            return Err(Error::Truncated);
        }
        Ok(Beacon { buf, body_end })
    }

    fn bytes(&self) -> &[u8] {
        &self.buf.as_ref()[..self.body_end]
    }

    /// The MAC header.
    pub fn header(&self) -> MgmtHeader<&[u8]> {
        MgmtHeader::new_checked(self.bytes()).expect("validated in new_checked")
    }

    /// The transmitting station's address (addr2 = addr3 = BSSID for
    /// beacons; for Wi-LE this is the IoT device's identity address).
    pub fn bssid(&self) -> MacAddr {
        self.header().addr3()
    }

    /// The 64-bit TSF timestamp, microseconds.
    pub fn timestamp(&self) -> u64 {
        let b = &self.bytes()[MGMT_HEADER_LEN..];
        u64::from_le_bytes(b[..8].try_into().unwrap())
    }

    /// Beacon interval in time units of 1024 µs.
    pub fn beacon_interval_tu(&self) -> u16 {
        let b = &self.bytes()[MGMT_HEADER_LEN..];
        u16::from_le_bytes([b[8], b[9]])
    }

    /// Beacon interval in microseconds.
    pub fn beacon_interval_us(&self) -> u64 {
        self.beacon_interval_tu() as u64 * 1024
    }

    /// Capability information.
    pub fn capability(&self) -> CapabilityInfo {
        let b = &self.bytes()[MGMT_HEADER_LEN..];
        CapabilityInfo(u16::from_le_bytes([b[10], b[11]]))
    }

    /// The information-element region of the body.
    pub fn elements(&self) -> &[u8] {
        &self.bytes()[MGMT_HEADER_LEN + BEACON_FIXED_LEN..]
    }

    /// The SSID, or `None` for hidden-SSID beacons.
    pub fn ssid(&self) -> Result<Option<&[u8]>> {
        let el = ie::find(self.elements(), ElementId::Ssid)?;
        Ok(if el.data.is_empty() {
            None
        } else {
            Some(el.data)
        })
    }

    /// True when the beacon hides its SSID (the Wi-LE anti-spam mechanism).
    pub fn is_hidden_ssid(&self) -> bool {
        matches!(self.ssid(), Ok(None))
    }

    /// The TIM element, if present (AP beacons carry one; Wi-LE fake
    /// beacons do not).
    pub fn tim(&self) -> Result<Tim> {
        let el = ie::find(self.elements(), ElementId::Tim)?;
        Tim::parse(el.data)
    }

    /// First vendor-specific payload matching `oui`/`vtype`, if any.
    pub fn vendor_payload(&self, oui: [u8; 3], vtype: u8) -> Option<&[u8]> {
        ie::vendor_elements(self.elements(), oui, vtype)
            .next()
            .map(|v| v.payload)
    }
}

/// Builder for complete beacon MPDUs.
///
/// ```
/// use wile_dot11::mgmt::{Beacon, BeaconBuilder};
/// use wile_dot11::mac::MacAddr;
///
/// let dev = MacAddr::from_device_id(7);
/// let frame = BeaconBuilder::new(dev)
///     .timestamp(123_456)
///     .hidden_ssid()
///     .vendor_specific([0xD0, 0x17, 0x1E], 0x01, b"22.5C")
///     .build();
/// let parsed = Beacon::new_checked(&frame[..]).unwrap();
/// assert!(parsed.is_hidden_ssid());
/// assert_eq!(parsed.vendor_payload([0xD0, 0x17, 0x1E], 0x01), Some(&b"22.5C"[..]));
/// ```
#[derive(Debug, Clone)]
pub struct BeaconBuilder {
    bssid: MacAddr,
    timestamp: u64,
    interval_tu: u16,
    capability: CapabilityInfo,
    seq: SeqControl,
    elements: Vec<u8>,
    ssid_written: bool,
}

impl BeaconBuilder {
    /// Start a beacon transmitted (and owned) by `bssid`.
    pub fn new(bssid: MacAddr) -> Self {
        BeaconBuilder {
            bssid,
            timestamp: 0,
            interval_tu: 100, // the classical 102.4 ms default
            capability: CapabilityInfo::ap_open(),
            seq: SeqControl::new(0, 0),
            elements: Vec::new(),
            ssid_written: false,
        }
    }

    /// Set the TSF timestamp (µs).
    pub fn timestamp(mut self, us: u64) -> Self {
        self.timestamp = us;
        self
    }

    /// Set the advertised beacon interval in time units (1024 µs).
    pub fn interval_tu(mut self, tu: u16) -> Self {
        self.interval_tu = tu;
        self
    }

    /// Set the capability field.
    pub fn capability(mut self, cap: CapabilityInfo) -> Self {
        self.capability = cap;
        self
    }

    /// Set the sequence control field.
    pub fn seq(mut self, seq: SeqControl) -> Self {
        self.seq = seq;
        self
    }

    /// Advertise a visible SSID. Must be called at most once, before any
    /// other element.
    pub fn ssid(mut self, name: &[u8]) -> Self {
        assert!(!self.ssid_written, "ssid may only be set once");
        ie::push_ssid(&mut self.elements, name).expect("ssid length checked by caller");
        self.ssid_written = true;
        self
    }

    /// Use the hidden-SSID form (zero-length SSID element) — §4.1.
    pub fn hidden_ssid(self) -> Self {
        self.ssid(b"")
    }

    /// Append a supported-rates element.
    pub fn supported_rates(mut self, rates: &[u8]) -> Self {
        ie::push_supported_rates(&mut self.elements, rates).expect("1..=8 rates");
        self
    }

    /// Append a DS parameter set (channel number).
    pub fn channel(mut self, ch: u8) -> Self {
        ie::push_ds_param(&mut self.elements, ch).expect("infallible");
        self
    }

    /// Append an RSN element (WPA2 security advertisement).
    pub fn rsn(mut self, rsn: &ie::Rsn) -> Self {
        rsn.push(&mut self.elements).expect("rsn bounded");
        self
    }

    /// Append a TIM element.
    pub fn tim(mut self, tim: &Tim) -> Self {
        tim.push(&mut self.elements).expect("bitmap bounded");
        self
    }

    /// Append a vendor-specific element (panics if payload exceeds
    /// [`ie::VENDOR_MAX_PAYLOAD`]; use [`ie::push_vendor`] directly for a
    /// fallible version).
    pub fn vendor_specific(mut self, oui: [u8; 3], vtype: u8, payload: &[u8]) -> Self {
        ie::push_vendor(&mut self.elements, oui, vtype, payload)
            .expect("payload exceeds vendor IE capacity");
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(MGMT_HEADER_LEN + BEACON_FIXED_LEN + self.elements.len() + 4);
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::Beacon),
            0,
            MacAddr::BROADCAST,
            self.bssid,
            self.bssid,
            self.seq,
        );
        out.extend_from_slice(&self.timestamp.to_le_bytes());
        out.extend_from_slice(&self.interval_tu.to_le_bytes());
        out.extend_from_slice(&self.capability.0.to_le_bytes());
        out.extend_from_slice(&self.elements);
        fcs::append_fcs(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> MacAddr {
        MacAddr::from_device_id(42)
    }

    #[test]
    fn minimal_beacon_round_trip() {
        let frame = BeaconBuilder::new(dev())
            .timestamp(0xDEAD_BEEF)
            .interval_tu(100)
            .ssid(b"net")
            .supported_rates(&[0x82, 0x84])
            .channel(11)
            .build();
        let b = Beacon::new_checked(&frame[..]).unwrap();
        assert_eq!(b.bssid(), dev());
        assert_eq!(b.timestamp(), 0xDEAD_BEEF);
        assert_eq!(b.beacon_interval_tu(), 100);
        assert_eq!(b.beacon_interval_us(), 102_400);
        assert_eq!(b.ssid().unwrap(), Some(&b"net"[..]));
        assert!(!b.is_hidden_ssid());
    }

    #[test]
    fn hidden_ssid_beacon() {
        let frame = BeaconBuilder::new(dev()).hidden_ssid().build();
        let b = Beacon::new_checked(&frame[..]).unwrap();
        assert!(b.is_hidden_ssid());
    }

    #[test]
    fn wile_shaped_beacon() {
        let frame = BeaconBuilder::new(dev())
            .hidden_ssid()
            .vendor_specific([0xD0, 0x17, 0x1E], 1, b"t=21.5")
            .build();
        let b = Beacon::new_checked(&frame[..]).unwrap();
        assert!(b.header().addr1().is_broadcast());
        assert_eq!(
            b.vendor_payload([0xD0, 0x17, 0x1E], 1),
            Some(&b"t=21.5"[..])
        );
        assert_eq!(b.vendor_payload([0xD0, 0x17, 0x1E], 2), None);
    }

    #[test]
    fn fcs_is_appended_and_verified() {
        let frame = BeaconBuilder::new(dev()).hidden_ssid().build();
        assert!(fcs::check_fcs(&frame));
        // Corrupt one byte: parse must fail the implicit FCS check only if
        // the corrupted frame no longer *ends* with a valid FCS and is thus
        // treated as FCS-less -- the body is then garbage but still parses
        // structurally. The medium is responsible for dropping bad-FCS
        // frames; Beacon itself tolerates FCS-less template buffers.
        let mut bad = frame.clone();
        bad[30] ^= 0xFF;
        assert!(!fcs::check_fcs(&bad));
    }

    #[test]
    fn tim_element_accessible() {
        let mut tim = Tim::empty(2, 3);
        tim.set_traffic_for(5);
        let frame = BeaconBuilder::new(dev()).ssid(b"ap").tim(&tim).build();
        let b = Beacon::new_checked(&frame[..]).unwrap();
        let parsed = b.tim().unwrap();
        assert_eq!(parsed.dtim_count, 2);
        assert!(parsed.traffic_for(5));
    }

    #[test]
    fn missing_tim_reported() {
        let frame = BeaconBuilder::new(dev()).hidden_ssid().build();
        let b = Beacon::new_checked(&frame[..]).unwrap();
        assert_eq!(b.tim().unwrap_err(), Error::MissingElement);
    }

    #[test]
    fn non_beacon_rejected() {
        let mut out = Vec::new();
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::ProbeReq),
            0,
            MacAddr::BROADCAST,
            dev(),
            MacAddr::BROADCAST,
            SeqControl::new(0, 0),
        );
        out.extend_from_slice(&[0u8; BEACON_FIXED_LEN]);
        assert_eq!(Beacon::new_checked(&out[..]).unwrap_err(), Error::WrongType);
    }

    #[test]
    fn truncated_beacon_rejected() {
        let frame = BeaconBuilder::new(dev()).hidden_ssid().build();
        assert!(Beacon::new_checked(&frame[..MGMT_HEADER_LEN + 4]).is_err());
    }

    #[test]
    fn capability_bits() {
        assert!(CapabilityInfo::ap_open().has(CapabilityInfo::ESS));
        assert!(!CapabilityInfo::ap_open().has(CapabilityInfo::PRIVACY));
        assert!(CapabilityInfo::ap_wpa2().has(CapabilityInfo::PRIVACY));
    }

    #[test]
    fn beacon_without_fcs_parses() {
        let frame = BeaconBuilder::new(dev()).hidden_ssid().build();
        let no_fcs = &frame[..frame.len() - 4];
        let b = Beacon::new_checked(no_fcs).unwrap();
        assert!(b.is_hidden_ssid());
    }
}
