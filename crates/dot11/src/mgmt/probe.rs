//! Probe request/response frames — the first exchange of the association
//! sequence the paper's WiFi-DC scenario pays for on every wakeup (§3.1).

use crate::error::{Error, Result};
use crate::fcs;
use crate::ie;
use crate::mac::{
    self, FrameControl, MacAddr, MgmtHeader, MgmtSubtype, SeqControl, MGMT_HEADER_LEN,
};
use crate::mgmt::beacon::{BeaconBuilder, CapabilityInfo};

/// Zero-copy view of a probe request.
#[derive(Debug, Clone)]
pub struct ProbeReq<T: AsRef<[u8]>> {
    buf: T,
    body_end: usize,
}

impl<T: AsRef<[u8]>> ProbeReq<T> {
    /// Wrap and validate a probe request MPDU (FCS optional, as for
    /// [`crate::mgmt::Beacon`]).
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        if hdr.frame_control().mgmt_subtype() != Ok(MgmtSubtype::ProbeReq) {
            return Err(Error::WrongType);
        }
        let body_end = if fcs::check_fcs(b) {
            b.len() - crate::FCS_LEN
        } else {
            b.len()
        };
        Ok(ProbeReq { buf, body_end })
    }

    /// The requesting station's address.
    pub fn sta(&self) -> MacAddr {
        MgmtHeader::new_checked(self.buf.as_ref()).unwrap().addr2()
    }

    /// The SSID being probed for; empty data means a wildcard probe.
    pub fn ssid(&self) -> Result<&[u8]> {
        let body = &self.buf.as_ref()[MGMT_HEADER_LEN..self.body_end];
        Ok(ie::find(body, ie::ElementId::Ssid)?.data)
    }
}

/// Builder for probe requests.
#[derive(Debug, Clone)]
pub struct ProbeReqBuilder {
    sta: MacAddr,
    ssid: Vec<u8>,
    rates: Vec<u8>,
    seq: SeqControl,
}

impl ProbeReqBuilder {
    /// Probe for `ssid` (empty slice = wildcard) from station `sta`.
    pub fn new(sta: MacAddr, ssid: &[u8]) -> Self {
        ProbeReqBuilder {
            sta,
            ssid: ssid.to_vec(),
            rates: vec![0x82, 0x84, 0x8B, 0x96, 0x24, 0x30, 0x48, 0x6C],
            seq: SeqControl::new(0, 0),
        }
    }

    /// Set the sequence control field.
    pub fn seq(mut self, seq: SeqControl) -> Self {
        self.seq = seq;
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::new();
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::ProbeReq),
            0,
            MacAddr::BROADCAST,
            self.sta,
            MacAddr::BROADCAST,
            self.seq,
        );
        ie::push_ssid(&mut out, &self.ssid).expect("ssid <= 32 bytes");
        ie::push_supported_rates(&mut out, &self.rates).expect("rates bounded");
        fcs::append_fcs(&mut out);
        out
    }
}

/// Builder for probe responses. A probe response body is identical in
/// layout to a beacon body, so this wraps [`BeaconBuilder`] and rewrites
/// the header.
#[derive(Debug, Clone)]
pub struct ProbeRespBuilder {
    inner: BeaconBuilder,
    dest: MacAddr,
    bssid: MacAddr,
}

impl ProbeRespBuilder {
    /// Respond from `bssid` to station `dest`.
    pub fn new(bssid: MacAddr, dest: MacAddr) -> Self {
        ProbeRespBuilder {
            inner: BeaconBuilder::new(bssid),
            dest,
            bssid,
        }
    }

    /// Advertise `ssid` (probe responses always carry the real SSID).
    pub fn ssid(mut self, ssid: &[u8]) -> Self {
        self.inner = self.inner.ssid(ssid);
        self
    }

    /// Set capability info.
    pub fn capability(mut self, cap: CapabilityInfo) -> Self {
        self.inner = self.inner.capability(cap);
        self
    }

    /// Append supported rates.
    pub fn supported_rates(mut self, rates: &[u8]) -> Self {
        self.inner = self.inner.supported_rates(rates);
        self
    }

    /// Set the channel.
    pub fn channel(mut self, ch: u8) -> Self {
        self.inner = self.inner.channel(ch);
        self
    }

    /// Advertise WPA2 security.
    pub fn rsn(mut self, rsn: &crate::ie::Rsn) -> Self {
        self.inner = self.inner.rsn(rsn);
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let beacon = self.inner.build();
        // Rewrite: subtype -> ProbeResp, addr1 -> dest (unicast).
        let mut out = beacon;
        let fc = FrameControl::mgmt(MgmtSubtype::ProbeResp);
        out[0..2].copy_from_slice(&fc.to_le_bytes());
        out[4..10].copy_from_slice(&self.dest.octets());
        out[16..22].copy_from_slice(&self.bssid.octets());
        // FCS must be recomputed after header surgery.
        out.truncate(out.len() - crate::FCS_LEN);
        fcs::append_fcs(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgmt::Beacon;

    #[test]
    fn probe_req_round_trip() {
        let sta = MacAddr::new([2, 0, 0, 0, 0, 9]);
        let frame = ProbeReqBuilder::new(sta, b"HomeNet").build();
        let p = ProbeReq::new_checked(&frame[..]).unwrap();
        assert_eq!(p.sta(), sta);
        assert_eq!(p.ssid().unwrap(), b"HomeNet");
        assert!(fcs::check_fcs(&frame));
    }

    #[test]
    fn wildcard_probe() {
        let sta = MacAddr::new([2, 0, 0, 0, 0, 9]);
        let frame = ProbeReqBuilder::new(sta, b"").build();
        let p = ProbeReq::new_checked(&frame[..]).unwrap();
        assert!(p.ssid().unwrap().is_empty());
    }

    #[test]
    fn probe_resp_has_unicast_dest_and_valid_fcs() {
        let ap = MacAddr::new([0xAA, 0, 0, 0, 0, 1]);
        let sta = MacAddr::new([2, 0, 0, 0, 0, 9]);
        let frame = ProbeRespBuilder::new(ap, sta)
            .ssid(b"HomeNet")
            .capability(CapabilityInfo::ap_wpa2())
            .supported_rates(&[0x82, 0x84])
            .channel(6)
            .build();
        assert!(fcs::check_fcs(&frame));
        let hdr = MgmtHeader::new_checked(&frame[..]).unwrap();
        assert_eq!(
            hdr.frame_control().mgmt_subtype().unwrap(),
            MgmtSubtype::ProbeResp
        );
        assert_eq!(hdr.addr1(), sta);
        assert_eq!(hdr.addr3(), ap);
    }

    #[test]
    fn probe_resp_is_not_a_beacon() {
        let ap = MacAddr::new([0xAA, 0, 0, 0, 0, 1]);
        let sta = MacAddr::new([2, 0, 0, 0, 0, 9]);
        let frame = ProbeRespBuilder::new(ap, sta).ssid(b"x").build();
        assert_eq!(
            Beacon::new_checked(&frame[..]).unwrap_err(),
            Error::WrongType
        );
    }

    #[test]
    fn beacon_rejected_as_probe_req() {
        let frame = BeaconBuilder::new(MacAddr::ZERO).hidden_ssid().build();
        assert_eq!(
            ProbeReq::new_checked(&frame[..]).unwrap_err(),
            Error::WrongType
        );
    }
}
