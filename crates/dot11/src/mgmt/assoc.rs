//! Association request/response frames.

use crate::error::{Error, Result};
use crate::fcs;
use crate::ie;
use crate::mac::{
    self, FrameControl, MacAddr, MgmtHeader, MgmtSubtype, SeqControl, MGMT_HEADER_LEN,
};
use crate::mgmt::auth::StatusCode;
use crate::mgmt::beacon::CapabilityInfo;

/// Zero-copy view of an association request.
#[derive(Debug, Clone)]
pub struct AssocReq<T: AsRef<[u8]>> {
    buf: T,
    body_end: usize,
}

impl<T: AsRef<[u8]>> AssocReq<T> {
    /// Wrap and validate (FCS optional).
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        if hdr.frame_control().mgmt_subtype() != Ok(MgmtSubtype::AssocReq) {
            return Err(Error::WrongType);
        }
        let body_end = if fcs::check_fcs(b) {
            b.len() - crate::FCS_LEN
        } else {
            b.len()
        };
        if body_end < MGMT_HEADER_LEN + 4 {
            return Err(Error::Truncated);
        }
        Ok(AssocReq { buf, body_end })
    }

    fn body(&self) -> &[u8] {
        &self.buf.as_ref()[MGMT_HEADER_LEN..self.body_end]
    }

    /// Requesting station address.
    pub fn sta(&self) -> MacAddr {
        MgmtHeader::new_checked(self.buf.as_ref()).unwrap().addr2()
    }

    /// Capability field the station claims.
    pub fn capability(&self) -> CapabilityInfo {
        let b = self.body();
        CapabilityInfo(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Listen interval, beacon intervals: how many beacons the station may
    /// sleep through while in power-save — the knob the WiFi-PS scenario
    /// turns to skip beacons ("wakes up only for every third beacon").
    pub fn listen_interval(&self) -> u16 {
        let b = self.body();
        u16::from_le_bytes([b[2], b[3]])
    }

    /// Requested SSID.
    pub fn ssid(&self) -> Result<&[u8]> {
        Ok(ie::find(&self.body()[4..], ie::ElementId::Ssid)?.data)
    }
}

/// Builder for association requests.
#[derive(Debug, Clone)]
pub struct AssocReqBuilder {
    sta: MacAddr,
    ap: MacAddr,
    ssid: Vec<u8>,
    capability: CapabilityInfo,
    listen_interval: u16,
    rates: Vec<u8>,
    seq: SeqControl,
}

impl AssocReqBuilder {
    /// Associate `sta` with `ap` on network `ssid`.
    pub fn new(sta: MacAddr, ap: MacAddr, ssid: &[u8]) -> Self {
        AssocReqBuilder {
            sta,
            ap,
            ssid: ssid.to_vec(),
            capability: CapabilityInfo::ap_wpa2(),
            listen_interval: 3,
            rates: vec![0x82, 0x84, 0x8B, 0x96, 0x24, 0x30, 0x48, 0x6C],
            seq: SeqControl::new(0, 0),
        }
    }

    /// Set the listen interval (beacon intervals the STA may sleep).
    pub fn listen_interval(mut self, li: u16) -> Self {
        self.listen_interval = li;
        self
    }

    /// Set the sequence control field.
    pub fn seq(mut self, seq: SeqControl) -> Self {
        self.seq = seq;
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::new();
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::AssocReq),
            0,
            self.ap,
            self.sta,
            self.ap,
            self.seq,
        );
        out.extend_from_slice(&self.capability.0.to_le_bytes());
        out.extend_from_slice(&self.listen_interval.to_le_bytes());
        ie::push_ssid(&mut out, &self.ssid).expect("ssid <= 32 bytes");
        ie::push_supported_rates(&mut out, &self.rates).expect("rates bounded");
        // Echo the security configuration we accept (WPA2-PSK/CCMP).
        ie::Rsn::wpa2_psk().push(&mut out).expect("bounded");
        fcs::append_fcs(&mut out);
        out
    }
}

/// Zero-copy view of an association response.
#[derive(Debug, Clone)]
pub struct AssocResp<T: AsRef<[u8]>> {
    buf: T,
    body_end: usize,
}

impl<T: AsRef<[u8]>> AssocResp<T> {
    /// Wrap and validate (FCS optional).
    pub fn new_checked(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        let hdr = MgmtHeader::new_checked(b)?;
        if hdr.frame_control().mgmt_subtype() != Ok(MgmtSubtype::AssocResp) {
            return Err(Error::WrongType);
        }
        let body_end = if fcs::check_fcs(b) {
            b.len() - crate::FCS_LEN
        } else {
            b.len()
        };
        if body_end < MGMT_HEADER_LEN + 6 {
            return Err(Error::Truncated);
        }
        Ok(AssocResp { buf, body_end })
    }

    fn body(&self) -> &[u8] {
        &self.buf.as_ref()[MGMT_HEADER_LEN..self.body_end]
    }

    /// Status code of the association attempt.
    pub fn status(&self) -> StatusCode {
        let b = self.body();
        StatusCode::from_u16(u16::from_le_bytes([b[2], b[3]]))
    }

    /// Association ID granted (with the two standard-mandated top bits
    /// cleared). This is the AID the TIM bitmap indexes.
    pub fn aid(&self) -> u16 {
        let b = self.body();
        u16::from_le_bytes([b[4], b[5]]) & 0x3FFF
    }
}

/// Builder for association responses.
#[derive(Debug, Clone)]
pub struct AssocRespBuilder {
    ap: MacAddr,
    sta: MacAddr,
    status: StatusCode,
    aid: u16,
    seq: SeqControl,
}

impl AssocRespBuilder {
    /// Respond from `ap` to `sta` with `status`, granting `aid` on success.
    pub fn new(ap: MacAddr, sta: MacAddr, status: StatusCode, aid: u16) -> Self {
        AssocRespBuilder {
            ap,
            sta,
            status,
            aid,
            seq: SeqControl::new(0, 0),
        }
    }

    /// Set the sequence control field.
    pub fn seq(mut self, seq: SeqControl) -> Self {
        self.seq = seq;
        self
    }

    /// Emit the complete MPDU including FCS.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::new();
        mac::header::push_header(
            &mut out,
            FrameControl::mgmt(MgmtSubtype::AssocResp),
            0,
            self.sta,
            self.ap,
            self.ap,
            self.seq,
        );
        out.extend_from_slice(&CapabilityInfo::ap_wpa2().0.to_le_bytes());
        out.extend_from_slice(&self.status.to_u16().to_le_bytes());
        // Standard sets the two MSBs of the AID field.
        out.extend_from_slice(&(self.aid | 0xC000).to_le_bytes());
        ie::push_supported_rates(&mut out, &[0x82, 0x84, 0x8B, 0x96]).expect("bounded");
        fcs::append_fcs(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, 5])
    }
    fn ap() -> MacAddr {
        MacAddr::new([0xAA, 0, 0, 0, 0, 1])
    }

    #[test]
    fn request_round_trip() {
        let frame = AssocReqBuilder::new(sta(), ap(), b"HomeNet")
            .listen_interval(3)
            .build();
        let r = AssocReq::new_checked(&frame[..]).unwrap();
        assert_eq!(r.sta(), sta());
        assert_eq!(r.listen_interval(), 3);
        assert_eq!(r.ssid().unwrap(), b"HomeNet");
        assert!(r.capability().has(CapabilityInfo::PRIVACY));
    }

    #[test]
    fn response_round_trip() {
        let frame = AssocRespBuilder::new(ap(), sta(), StatusCode::Success, 7).build();
        let r = AssocResp::new_checked(&frame[..]).unwrap();
        assert!(r.status().is_success());
        assert_eq!(r.aid(), 7);
    }

    #[test]
    fn aid_top_bits_masked() {
        let frame = AssocRespBuilder::new(ap(), sta(), StatusCode::Success, 0x3FFF).build();
        let r = AssocResp::new_checked(&frame[..]).unwrap();
        assert_eq!(r.aid(), 0x3FFF);
    }

    #[test]
    fn rejection_response() {
        let frame = AssocRespBuilder::new(ap(), sta(), StatusCode::ApFull, 0).build();
        let r = AssocResp::new_checked(&frame[..]).unwrap();
        assert_eq!(r.status(), StatusCode::ApFull);
    }

    #[test]
    fn wrong_subtype_rejected_both_ways() {
        let req = AssocReqBuilder::new(sta(), ap(), b"x").build();
        let resp = AssocRespBuilder::new(ap(), sta(), StatusCode::Success, 1).build();
        assert_eq!(
            AssocResp::new_checked(&req[..]).unwrap_err(),
            Error::WrongType
        );
        assert_eq!(
            AssocReq::new_checked(&resp[..]).unwrap_err(),
            Error::WrongType
        );
    }

    #[test]
    fn truncated_rejected() {
        let frame = AssocReqBuilder::new(sta(), ap(), b"x").build();
        assert!(AssocReq::new_checked(&frame[..MGMT_HEADER_LEN + 3]).is_err());
    }
}
