//! Management-frame information elements (IEs).
//!
//! Every management frame body ends in a sequence of `(id, length, data)`
//! triples. Wi-LE cares about two of them in particular:
//!
//! * **SSID (id 0)** — transmitted with *zero length* to implement the
//!   "hidden SSID" trick of §4.1 of the paper, so injected beacons never
//!   appear in anyone's AP list;
//! * **Vendor-specific (id 221)** — the field that carries the IoT
//!   payload. Its data starts with a 3-byte OUI and a 1-byte vendor type,
//!   leaving [`VENDOR_MAX_PAYLOAD`] bytes for application data (the paper
//!   quotes "up to 253 bytes" for the whole field).

use crate::error::{Error, Result};

/// Element identifiers used in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ElementId {
    Ssid,
    SupportedRates,
    DsParam,
    Tim,
    Country,
    Rsn,
    ExtSupportedRates,
    HtCapabilities,
    VendorSpecific,
    /// Any identifier this crate does not interpret.
    Other(u8),
}

impl ElementId {
    /// Wire value of the identifier.
    pub fn to_u8(self) -> u8 {
        match self {
            ElementId::Ssid => 0,
            ElementId::SupportedRates => 1,
            ElementId::DsParam => 3,
            ElementId::Tim => 5,
            ElementId::Country => 7,
            ElementId::HtCapabilities => 45,
            ElementId::Rsn => 48,
            ElementId::ExtSupportedRates => 50,
            ElementId::VendorSpecific => 221,
            ElementId::Other(v) => v,
        }
    }

    /// Decode a wire identifier.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => ElementId::Ssid,
            1 => ElementId::SupportedRates,
            3 => ElementId::DsParam,
            5 => ElementId::Tim,
            7 => ElementId::Country,
            45 => ElementId::HtCapabilities,
            48 => ElementId::Rsn,
            50 => ElementId::ExtSupportedRates,
            221 => ElementId::VendorSpecific,
            other => ElementId::Other(other),
        }
    }
}

/// Maximum data length of any single information element.
pub const IE_MAX_DATA: usize = 255;

/// Maximum application payload of one vendor-specific IE: 255 bytes of
/// element data minus the 3-byte OUI and 1-byte vendor type.
pub const VENDOR_MAX_PAYLOAD: usize = IE_MAX_DATA - 4;

/// One parsed information element borrowing from a frame body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Element<'a> {
    /// The element identifier.
    pub id: ElementId,
    /// The element data (everything after the length octet).
    pub data: &'a [u8],
}

/// Iterator over the information elements of a frame body.
///
/// Yields `Err(Error::BadElement)` once and then stops if a length field
/// overruns the buffer, so malformed tails cannot cause loops.
#[derive(Debug, Clone)]
pub struct Elements<'a> {
    rest: &'a [u8],
    poisoned: bool,
}

impl<'a> Elements<'a> {
    /// Iterate over the IEs in `body`.
    pub fn new(body: &'a [u8]) -> Self {
        Elements {
            rest: body,
            poisoned: false,
        }
    }
}

impl<'a> Iterator for Elements<'a> {
    type Item = Result<Element<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < 2 {
            self.poisoned = true;
            return Some(Err(Error::BadElement));
        }
        let id = ElementId::from_u8(self.rest[0]);
        let len = self.rest[1] as usize;
        if self.rest.len() < 2 + len {
            self.poisoned = true;
            return Some(Err(Error::BadElement));
        }
        let data = &self.rest[2..2 + len];
        self.rest = &self.rest[2 + len..];
        Some(Ok(Element { id, data }))
    }
}

/// Find the first element with identifier `id` in `body`.
pub fn find(body: &[u8], id: ElementId) -> Result<Element<'_>> {
    for el in Elements::new(body) {
        let el = el?;
        if el.id == id {
            return Ok(el);
        }
    }
    Err(Error::MissingElement)
}

/// Append one raw information element to `out`.
///
/// Fails with [`Error::Unrepresentable`] if `data` exceeds 255 bytes.
pub fn push(out: &mut Vec<u8>, id: ElementId, data: &[u8]) -> Result<()> {
    if data.len() > IE_MAX_DATA {
        return Err(Error::Unrepresentable);
    }
    out.push(id.to_u8());
    out.push(data.len() as u8);
    out.extend_from_slice(data);
    Ok(())
}

/// Append an SSID element. An empty name is the *hidden SSID* form.
pub fn push_ssid(out: &mut Vec<u8>, name: &[u8]) -> Result<()> {
    if name.len() > 32 {
        return Err(Error::Unrepresentable);
    }
    push(out, ElementId::Ssid, name)
}

/// Append a supported-rates element. Rates are in units of 500 kb/s with
/// the high bit marking basic (mandatory) rates, per the standard.
pub fn push_supported_rates(out: &mut Vec<u8>, rates: &[u8]) -> Result<()> {
    if rates.is_empty() || rates.len() > 8 {
        return Err(Error::Unrepresentable);
    }
    push(out, ElementId::SupportedRates, rates)
}

/// Append a DS parameter set element carrying the current channel.
pub fn push_ds_param(out: &mut Vec<u8>, channel: u8) -> Result<()> {
    push(out, ElementId::DsParam, &[channel])
}

/// Append a vendor-specific element: 3-byte OUI, 1-byte vendor type,
/// then up to [`VENDOR_MAX_PAYLOAD`] bytes of payload.
pub fn push_vendor(out: &mut Vec<u8>, oui: [u8; 3], vtype: u8, payload: &[u8]) -> Result<()> {
    if payload.len() > VENDOR_MAX_PAYLOAD {
        return Err(Error::Unrepresentable);
    }
    let mut data = Vec::with_capacity(4 + payload.len());
    data.extend_from_slice(&oui);
    data.push(vtype);
    data.extend_from_slice(payload);
    push(out, ElementId::VendorSpecific, &data)
}

/// Parsed view of a vendor-specific element's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorIe<'a> {
    /// Organizationally unique identifier.
    pub oui: [u8; 3],
    /// Vendor-defined subtype octet.
    pub vtype: u8,
    /// Vendor payload.
    pub payload: &'a [u8],
}

impl<'a> VendorIe<'a> {
    /// Parse the data of a vendor-specific element.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::BadElement);
        }
        Ok(VendorIe {
            oui: [data[0], data[1], data[2]],
            vtype: data[3],
            payload: &data[4..],
        })
    }
}

/// Iterate over all vendor-specific elements matching `oui` and `vtype`.
pub fn vendor_elements<'a>(
    body: &'a [u8],
    oui: [u8; 3],
    vtype: u8,
) -> impl Iterator<Item = VendorIe<'a>> + 'a {
    Elements::new(body).filter_map(move |el| {
        let el = el.ok()?;
        if el.id != ElementId::VendorSpecific {
            return None;
        }
        let v = VendorIe::parse(el.data).ok()?;
        (v.oui == oui && v.vtype == vtype).then_some(v)
    })
}

/// Cipher/AKM suite selectors used in RSN elements (OUI 00-0F-AC).
pub mod rsn_suite {
    /// CCMP-128 (AES) — the WPA2 default.
    pub const CCMP: [u8; 4] = [0x00, 0x0F, 0xAC, 0x04];
    /// TKIP (legacy WPA).
    pub const TKIP: [u8; 4] = [0x00, 0x0F, 0xAC, 0x02];
    /// Pre-shared key authentication.
    pub const PSK: [u8; 4] = [0x00, 0x0F, 0xAC, 0x02];
    /// 802.1X (enterprise) authentication.
    pub const DOT1X: [u8; 4] = [0x00, 0x0F, 0xAC, 0x01];
}

/// The RSN (Robust Security Network) element a WPA2 AP advertises in
/// beacons and probe responses, and a client echoes in its association
/// request — how both sides agree on CCMP + PSK before the 4-way
/// handshake (§3.1: "If the access point has encryption enabled,
/// another step is required to validate the shared key").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rsn {
    /// RSN version (always 1).
    pub version: u16,
    /// Group (multicast) cipher suite.
    pub group_cipher: [u8; 4],
    /// Pairwise (unicast) cipher suites offered.
    pub pairwise_ciphers: Vec<[u8; 4]>,
    /// Authentication and key management suites offered.
    pub akm_suites: Vec<[u8; 4]>,
    /// RSN capabilities field.
    pub capabilities: u16,
}

impl Rsn {
    /// The standard home-network configuration: WPA2-PSK with CCMP.
    pub fn wpa2_psk() -> Self {
        Rsn {
            version: 1,
            group_cipher: rsn_suite::CCMP,
            pairwise_ciphers: vec![rsn_suite::CCMP],
            akm_suites: vec![rsn_suite::PSK],
            capabilities: 0,
        }
    }

    /// Serialize the element data (without the id/len envelope).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(8 + 4 * (self.pairwise_ciphers.len() + self.akm_suites.len()) + 6);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.group_cipher);
        out.extend_from_slice(&(self.pairwise_ciphers.len() as u16).to_le_bytes());
        for c in &self.pairwise_ciphers {
            out.extend_from_slice(c);
        }
        out.extend_from_slice(&(self.akm_suites.len() as u16).to_le_bytes());
        for a in &self.akm_suites {
            out.extend_from_slice(a);
        }
        out.extend_from_slice(&self.capabilities.to_le_bytes());
        out
    }

    /// Parse element data.
    pub fn parse(b: &[u8]) -> Result<Self> {
        if b.len() < 8 {
            return Err(Error::BadElement);
        }
        let version = u16::from_le_bytes([b[0], b[1]]);
        let group_cipher: [u8; 4] = b[2..6].try_into().unwrap();
        let mut off = 6;
        let read_suites = |b: &[u8], off: &mut usize| -> Result<Vec<[u8; 4]>> {
            if b.len() < *off + 2 {
                return Err(Error::BadElement);
            }
            let n = u16::from_le_bytes([b[*off], b[*off + 1]]) as usize;
            *off += 2;
            if n > 16 || b.len() < *off + 4 * n {
                return Err(Error::BadElement);
            }
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(b[*off + 4 * i..*off + 4 * i + 4].try_into().unwrap());
            }
            *off += 4 * n;
            Ok(v)
        };
        let pairwise_ciphers = read_suites(b, &mut off)?;
        let akm_suites = read_suites(b, &mut off)?;
        if b.len() < off + 2 {
            return Err(Error::BadElement);
        }
        let capabilities = u16::from_le_bytes([b[off], b[off + 1]]);
        Ok(Rsn {
            version,
            group_cipher,
            pairwise_ciphers,
            akm_suites,
            capabilities,
        })
    }

    /// Append as an information element.
    pub fn push(&self, out: &mut Vec<u8>) -> Result<()> {
        push(out, ElementId::Rsn, &self.to_bytes())
    }

    /// True when the offer includes CCMP pairwise + PSK — what our
    /// supplicant accepts.
    pub fn supports_wpa2_psk(&self) -> bool {
        self.pairwise_ciphers.contains(&rsn_suite::CCMP)
            && self.akm_suites.contains(&rsn_suite::PSK)
    }
}

/// The traffic indication map element the AP places in every beacon;
/// power-saving clients read it to learn whether frames are buffered
/// for them (§3.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tim {
    /// Beacons remaining until the next DTIM (0 = this beacon is a DTIM).
    pub dtim_count: u8,
    /// DTIM period in beacon intervals.
    pub dtim_period: u8,
    /// Bit 0: group traffic buffered; bits 1–7: bitmap offset.
    pub bitmap_control: u8,
    /// Partial virtual bitmap: one bit per association ID.
    pub bitmap: Vec<u8>,
}

impl Tim {
    /// A TIM with no buffered traffic.
    pub fn empty(dtim_count: u8, dtim_period: u8) -> Self {
        Tim {
            dtim_count,
            dtim_period,
            bitmap_control: 0,
            bitmap: vec![0],
        }
    }

    /// Whether traffic is buffered for association ID `aid`, taking the
    /// bitmap offset into account.
    pub fn traffic_for(&self, aid: u16) -> bool {
        let offset = ((self.bitmap_control >> 1) as u16) * 2;
        let byte = (aid / 8).checked_sub(offset);
        match byte {
            Some(b) if (b as usize) < self.bitmap.len() => {
                self.bitmap[b as usize] & (1 << (aid % 8)) != 0
            }
            _ => false,
        }
    }

    /// Set the buffered-traffic bit for `aid` (bitmap grows as needed;
    /// offset encoding is not used by this builder).
    pub fn set_traffic_for(&mut self, aid: u16) {
        let byte = (aid / 8) as usize;
        if self.bitmap.len() <= byte {
            self.bitmap.resize(byte + 1, 0);
        }
        self.bitmap[byte] |= 1 << (aid % 8);
    }

    /// Parse from element data.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::BadElement);
        }
        Ok(Tim {
            dtim_count: data[0],
            dtim_period: data[1],
            bitmap_control: data[2],
            bitmap: data[3..].to_vec(),
        })
    }

    /// Append as an information element.
    pub fn push(&self, out: &mut Vec<u8>) -> Result<()> {
        let mut data = Vec::with_capacity(3 + self.bitmap.len());
        data.push(self.dtim_count);
        data.push(self.dtim_period);
        data.push(self.bitmap_control);
        data.extend_from_slice(&self.bitmap);
        push(out, ElementId::Tim, &data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_iteration() {
        let mut body = Vec::new();
        push_ssid(&mut body, b"lab").unwrap();
        push_supported_rates(&mut body, &[0x82, 0x84, 0x8B, 0x96]).unwrap();
        push_ds_param(&mut body, 6).unwrap();
        let els: Vec<_> = Elements::new(&body).map(|e| e.unwrap()).collect();
        assert_eq!(els.len(), 3);
        assert_eq!(els[0].id, ElementId::Ssid);
        assert_eq!(els[0].data, b"lab");
        assert_eq!(els[2].data, &[6]);
    }

    #[test]
    fn hidden_ssid_is_zero_length() {
        let mut body = Vec::new();
        push_ssid(&mut body, b"").unwrap();
        assert_eq!(body, vec![0, 0]);
        let el = find(&body, ElementId::Ssid).unwrap();
        assert!(el.data.is_empty());
    }

    #[test]
    fn ssid_longer_than_32_rejected() {
        let mut body = Vec::new();
        assert_eq!(
            push_ssid(&mut body, &[b'x'; 33]),
            Err(Error::Unrepresentable)
        );
    }

    #[test]
    fn truncated_element_poisons_iterator() {
        // Claims 10 bytes of data but provides 2.
        let body = [221u8, 10, 1, 2];
        let mut it = Elements::new(&body);
        assert_eq!(it.next(), Some(Err(Error::BadElement)));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn lone_id_byte_is_malformed() {
        let body = [0u8];
        assert_eq!(Elements::new(&body).next(), Some(Err(Error::BadElement)));
    }

    #[test]
    fn find_missing_element() {
        let mut body = Vec::new();
        push_ssid(&mut body, b"x").unwrap();
        assert_eq!(
            find(&body, ElementId::Tim).unwrap_err(),
            Error::MissingElement
        );
    }

    #[test]
    fn vendor_ie_round_trip() {
        let mut body = Vec::new();
        push_vendor(&mut body, [0xD0, 0x17, 0x1E], 0x01, b"hello").unwrap();
        let el = find(&body, ElementId::VendorSpecific).unwrap();
        let v = VendorIe::parse(el.data).unwrap();
        assert_eq!(v.oui, [0xD0, 0x17, 0x1E]);
        assert_eq!(v.vtype, 1);
        assert_eq!(v.payload, b"hello");
    }

    #[test]
    fn vendor_max_payload_boundary() {
        let mut body = Vec::new();
        let max = vec![0xAB; VENDOR_MAX_PAYLOAD];
        push_vendor(&mut body, [1, 2, 3], 0, &max).unwrap();
        assert_eq!(body[1] as usize, IE_MAX_DATA);

        let over = vec![0xAB; VENDOR_MAX_PAYLOAD + 1];
        assert_eq!(
            push_vendor(&mut Vec::new(), [1, 2, 3], 0, &over),
            Err(Error::Unrepresentable)
        );
    }

    #[test]
    fn vendor_filter_skips_other_ouis() {
        let mut body = Vec::new();
        push_vendor(&mut body, [0, 0x50, 0xF2], 1, b"wmm").unwrap();
        push_vendor(&mut body, [0xD0, 0x17, 0x1E], 1, b"ours").unwrap();
        push_vendor(&mut body, [0xD0, 0x17, 0x1E], 2, b"other type").unwrap();
        let got: Vec<_> = vendor_elements(&body, [0xD0, 0x17, 0x1E], 1).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"ours");
    }

    #[test]
    fn vendor_parse_needs_oui_and_type() {
        assert_eq!(VendorIe::parse(&[1, 2, 3]), Err(Error::BadElement));
        let v = VendorIe::parse(&[1, 2, 3, 4]).unwrap();
        assert!(v.payload.is_empty());
    }

    #[test]
    fn tim_round_trip() {
        let mut tim = Tim::empty(0, 3);
        tim.set_traffic_for(1);
        tim.set_traffic_for(19);
        let mut out = Vec::new();
        tim.push(&mut out).unwrap();
        let el = find(&out, ElementId::Tim).unwrap();
        let parsed = Tim::parse(el.data).unwrap();
        assert_eq!(parsed, tim);
        assert!(parsed.traffic_for(1));
        assert!(parsed.traffic_for(19));
        assert!(!parsed.traffic_for(2));
        assert!(!parsed.traffic_for(500));
    }

    #[test]
    fn tim_bitmap_offset_decoding() {
        // bitmap_control offset of 1 means the bitmap starts at AID 16.
        let tim = Tim {
            dtim_count: 0,
            dtim_period: 1,
            bitmap_control: 0b0000_0010,
            bitmap: vec![0b0000_0001],
        };
        assert!(tim.traffic_for(16));
        assert!(!tim.traffic_for(0));
    }

    #[test]
    fn tim_too_short_rejected() {
        assert_eq!(Tim::parse(&[0, 1, 0]), Err(Error::BadElement));
    }

    #[test]
    fn supported_rates_bounds() {
        assert!(push_supported_rates(&mut Vec::new(), &[]).is_err());
        assert!(push_supported_rates(&mut Vec::new(), &[1; 9]).is_err());
    }

    #[test]
    fn rsn_wpa2_round_trip() {
        let r = Rsn::wpa2_psk();
        assert!(r.supports_wpa2_psk());
        let parsed = Rsn::parse(&r.to_bytes()).unwrap();
        assert_eq!(parsed, r);
        // 2 + 4 + 2 + 4 + 2 + 4 + 2 = 20 bytes.
        assert_eq!(r.to_bytes().len(), 20);
    }

    #[test]
    fn rsn_as_ie_round_trip() {
        let mut body = Vec::new();
        Rsn::wpa2_psk().push(&mut body).unwrap();
        let el = find(&body, ElementId::Rsn).unwrap();
        assert_eq!(Rsn::parse(el.data).unwrap(), Rsn::wpa2_psk());
    }

    #[test]
    fn rsn_multiple_suites() {
        let r = Rsn {
            version: 1,
            group_cipher: rsn_suite::TKIP,
            pairwise_ciphers: vec![rsn_suite::CCMP, rsn_suite::TKIP],
            akm_suites: vec![rsn_suite::PSK, rsn_suite::DOT1X],
            capabilities: 0x000C,
        };
        let parsed = Rsn::parse(&r.to_bytes()).unwrap();
        assert_eq!(parsed, r);
        assert!(parsed.supports_wpa2_psk());
    }

    #[test]
    fn rsn_without_ccmp_is_not_wpa2() {
        let r = Rsn {
            version: 1,
            group_cipher: rsn_suite::TKIP,
            pairwise_ciphers: vec![rsn_suite::TKIP],
            akm_suites: vec![rsn_suite::PSK],
            capabilities: 0,
        };
        assert!(!r.supports_wpa2_psk());
    }

    #[test]
    fn rsn_malformed_rejected() {
        assert_eq!(Rsn::parse(&[1, 0, 0]), Err(Error::BadElement));
        // Suite count overrunning the buffer.
        let mut b = Rsn::wpa2_psk().to_bytes();
        b[6] = 200;
        assert_eq!(Rsn::parse(&b), Err(Error::BadElement));
        // Truncated capabilities.
        let good = Rsn::wpa2_psk().to_bytes();
        assert_eq!(Rsn::parse(&good[..good.len() - 1]), Err(Error::BadElement));
    }

    #[test]
    fn element_id_round_trip_all_known() {
        for id in [
            ElementId::Ssid,
            ElementId::SupportedRates,
            ElementId::DsParam,
            ElementId::Tim,
            ElementId::Country,
            ElementId::Rsn,
            ElementId::ExtSupportedRates,
            ElementId::HtCapabilities,
            ElementId::VendorSpecific,
            ElementId::Other(200),
        ] {
            assert_eq!(ElementId::from_u8(id.to_u8()), id);
        }
    }
}
