//! Frame check sequence: the CRC-32 appended to every 802.11 MPDU.
//!
//! 802.11 uses the same CRC-32 as IEEE 802.3 (polynomial `0x04C11DB7`,
//! reflected form `0xEDB88320`, initial value and final XOR `0xFFFF_FFFF`),
//! transmitted least-significant byte first.

/// Reflected generator polynomial of the IEEE CRC-32.
pub const POLY_REFLECTED: u32 = 0xEDB8_8320;

/// Table-driven CRC-32 over `data`, as used for the 802.11 FCS.
///
/// ```
/// // The classic check vector for CRC-32/ISO-HDLC.
/// assert_eq!(wile_dot11::fcs::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

/// Incremental CRC-32, for computing an FCS over scattered buffers.
///
/// ```
/// use wile_dot11::fcs::{crc32, Crc32};
/// let mut inc = Crc32::new();
/// inc.update(b"1234");
/// inc.update(b"56789");
/// assert_eq!(inc.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running CRC.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Finish and return the CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Append the 4-byte FCS (little-endian, i.e. LSB first as transmitted)
/// to a frame body.
pub fn append_fcs(frame: &mut Vec<u8>) {
    let fcs = crc32(frame);
    frame.extend_from_slice(&fcs.to_le_bytes());
}

/// Check the trailing FCS of `frame` (which must include the 4 FCS bytes).
///
/// Returns `true` when the FCS matches the preceding bytes.
pub fn check_fcs(frame: &[u8]) -> bool {
    if frame.len() < 4 {
        return false;
    }
    let (body, tail) = frame.split_at(frame.len() - 4);
    let want = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    crc32(body) == want
}

/// Strip a verified FCS, returning the frame body, or `None` if the FCS
/// does not match.
pub fn strip_fcs(frame: &[u8]) -> Option<&[u8]> {
    if check_fcs(frame) {
        Some(&frame[..frame.len() - 4])
    } else {
        None
    }
}

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        // CRC-32 of the empty string is 0.
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_zero_byte() {
        assert_eq!(crc32(&[0u8]), 0xD202_EF8D);
    }

    #[test]
    fn fcs_of_frame_plus_fcs_is_residue() {
        // Appending a correct CRC and re-running the CRC over the whole
        // buffer yields the fixed residue 0x2144DF1C -- a classic CRC-32
        // identity hardware checkers rely on.
        let mut frame = b"any frame at all".to_vec();
        append_fcs(&mut frame);
        assert_eq!(crc32(&frame), 0x2144_DF1C);
    }

    #[test]
    fn append_then_check_round_trips() {
        let mut frame = b"beacon frame body".to_vec();
        append_fcs(&mut frame);
        assert!(check_fcs(&frame));
        assert_eq!(strip_fcs(&frame), Some(&b"beacon frame body"[..]));
    }

    #[test]
    fn corruption_is_detected() {
        let mut frame = b"beacon frame body".to_vec();
        append_fcs(&mut frame);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(!check_fcs(&bad), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn short_frames_fail_check() {
        assert!(!check_fcs(&[]));
        assert!(!check_fcs(&[1, 2, 3]));
        assert_eq!(strip_fcs(&[1, 2, 3]), None);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        for split in [0usize, 1, 7, 128, 255, 256] {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc32(&data), "split at {split}");
        }
    }
}
