//! # wile-dot11 — IEEE 802.11 wire formats and PHY timing
//!
//! This crate provides the 802.11 substrate for the Wi-LE reproduction
//! (Abedi, Abari, Brecht — *"Wi-LE: Can WiFi Replace Bluetooth?"*,
//! HotNets '19): byte-exact encoders/decoders for the frames the paper's
//! system touches, and a PHY airtime model used to account for transmit
//! energy.
//!
//! ## Layout
//!
//! * [`mac`] — MAC addresses, frame control, MAC headers, sequence control.
//! * [`ie`] — management-frame information elements (SSID incl. the
//!   *hidden SSID* form Wi-LE relies on, supported rates, TIM,
//!   **vendor-specific** — the field that carries Wi-LE payloads).
//! * [`mgmt`] — management frame bodies: beacon, probe request/response,
//!   authentication, (re)association, deauthentication.
//! * [`ctrl`] — control frames: ACK, RTS, CTS, PS-Poll.
//! * [`data`] — data frames with LLC/SNAP encapsulation (DHCP/ARP/EAPOL ride
//!   on these during connection establishment).
//! * [`eapol`] — EAPOL-Key frames for the WPA2 4-way handshake.
//! * [`fcs`] — the frame check sequence (CRC-32).
//! * [`phy`] — transmission rates and per-frame airtime (DSSS, OFDM, HT),
//!   including the 72.2 Mbps MCS7 short-GI rate the paper transmits
//!   Wi-LE beacons at.
//!
//! ## Design
//!
//! Parsing follows the smoltcp idiom: a cheap wrapper type over any
//! `AsRef<[u8]>` buffer with a checked constructor (`new_checked`) and
//! field accessors that read directly from the wire representation. No
//! allocation happens during parsing; builders emit `Vec<u8>`.
//!
//! ```
//! use wile_dot11::mgmt::BeaconBuilder;
//! use wile_dot11::mac::MacAddr;
//!
//! // Build a hidden-SSID beacon with a vendor-specific IE -- the exact
//! // shape of a Wi-LE transmission.
//! let frame = BeaconBuilder::new(MacAddr::new([0x02, 0, 0, 0, 0, 1]))
//!     .hidden_ssid()
//!     .vendor_specific([0xD0, 0x17, 0x1E], 0x01, b"17C")
//!     .build();
//! assert!(frame.len() > 24);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ctrl;
pub mod data;
pub mod eapol;
pub mod error;
pub mod fcs;
pub mod ie;
pub mod mac;
pub mod mgmt;
pub mod phy;

pub use error::{Error, Result};
pub use mac::MacAddr;

/// The maximum MAC service data unit (payload of one data frame), bytes.
pub const MAX_MSDU: usize = 2304;

/// Length of the frame check sequence appended to every frame, bytes.
pub const FCS_LEN: usize = 4;
