//! PHY-layer model: transmission rates and frame airtime.
//!
//! The paper transmits Wi-LE beacons at "a physical bitrate of 72 Mbps at
//! transmission power of 0 dBm" (§5.4) — that is HT MCS 7, 20 MHz, short
//! guard interval = 72.2 Mb/s. Airtime feeds directly into the
//! energy-per-packet accounting.

mod airtime;
pub mod channels;
mod rates;

pub use airtime::{ack_airtime_us, frame_airtime_us, Timing, DIFS_US, SIFS_US, SLOT_US};
pub use channels::{band_of, centre_freq_mhz, channels_overlap, Band};
pub use rates::{Modulation, PhyRate};
