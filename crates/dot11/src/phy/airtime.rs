//! Per-frame airtime computation.
//!
//! Airtime is the on-air duration of one PPDU: PHY preamble + header +
//! payload symbols. The energy model multiplies airtime by TX power draw
//! to cost each transmission, so these formulas follow the standard
//! timings:
//!
//! * DSSS long preamble: 144 µs preamble + 48 µs PLCP header, then
//!   payload at the data rate;
//! * OFDM: 16 µs preamble + 4 µs SIGNAL, then 4 µs symbols carrying
//!   `bits_per_symbol` data bits each, with 16 SERVICE + 6 tail bits;
//! * HT mixed mode: 36 µs of legacy + HT preamble (L-STF 8, L-LTF 8,
//!   L-SIG 4, HT-SIG 8, HT-STF 4, HT-LTF 4), then 4 µs (LGI) or 3.6 µs
//!   (SGI) symbols.

use super::rates::PhyRate;

/// Short interframe space, 2.4 GHz OFDM/DSSS (µs).
pub const SIFS_US: u64 = 10;
/// Slot time, 802.11g/n short slot (µs).
pub const SLOT_US: u64 = 9;
/// DCF interframe space = SIFS + 2·slot (µs).
pub const DIFS_US: u64 = SIFS_US + 2 * SLOT_US;

/// MAC timing constants bundled for the medium simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Short interframe space, µs.
    pub sifs_us: u64,
    /// Slot time, µs.
    pub slot_us: u64,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            sifs_us: SIFS_US,
            slot_us: SLOT_US,
            cw_min: 15,
            cw_max: 1023,
        }
    }
}

impl Timing {
    /// DIFS = SIFS + 2·slot, µs.
    pub fn difs_us(&self) -> u64 {
        self.sifs_us + 2 * self.slot_us
    }
}

/// On-air duration of a PPDU carrying an MPDU of `mpdu_len` bytes
/// (including FCS) at `rate`, in microseconds (rounded up).
pub fn frame_airtime_us(rate: PhyRate, mpdu_len: usize) -> u64 {
    let bits = mpdu_len as u64 * 8;
    match rate {
        PhyRate::Dsss1 | PhyRate::Dsss2 | PhyRate::Cck5_5 | PhyRate::Cck11 => {
            // Long preamble (144 µs) + PLCP header (48 µs) + payload.
            let kbps = rate.kbps() as u64;
            192 + div_ceil(bits * 1_000, kbps)
        }
        PhyRate::Ofdm(_) => {
            let nbps = rate.bits_per_symbol().unwrap() as u64;
            let symbols = div_ceil(16 + 6 + bits, nbps);
            20 + symbols * 4
        }
        PhyRate::Ht { sgi, .. } => {
            let nbps = rate.bits_per_symbol().unwrap() as u64;
            let symbols = div_ceil(16 + 6 + bits, nbps);
            // Mixed-mode preamble: 36 µs with one HT-LTF (single stream).
            let sym_ns = if sgi { 3_600 } else { 4_000 };
            36 + div_ceil(symbols * sym_ns, 1_000)
        }
    }
}

/// Airtime of an ACK (14-byte MPDU) at the standard response rate for
/// `data_rate` — the highest mandatory rate not exceeding the data rate.
pub fn ack_airtime_us(data_rate: PhyRate) -> u64 {
    let ack_rate = match data_rate {
        PhyRate::Dsss1 => PhyRate::Dsss1,
        PhyRate::Dsss2 | PhyRate::Cck5_5 | PhyRate::Cck11 => PhyRate::Dsss2,
        PhyRate::Ofdm(m) if m >= 24 => PhyRate::Ofdm(24),
        PhyRate::Ofdm(m) if m >= 12 => PhyRate::Ofdm(12),
        PhyRate::Ofdm(_) => PhyRate::Ofdm(6),
        PhyRate::Ht { .. } => PhyRate::Ofdm(24),
    };
    frame_airtime_us(ack_rate, crate::ctrl::ACK_LEN)
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsss1_beacon_airtime() {
        // A 100-byte beacon at 1 Mb/s: 192 + 800 = 992 µs.
        assert_eq!(frame_airtime_us(PhyRate::Dsss1, 100), 992);
    }

    #[test]
    fn ofdm6_small_frame() {
        // 14-byte ACK at 6 Mb/s: 20 + ceil((22+112)/24)*4 = 20 + 6*4 = 44 µs.
        assert_eq!(frame_airtime_us(PhyRate::Ofdm(6), 14), 44);
    }

    #[test]
    fn ofdm54_vs_ofdm6_ordering() {
        let slow = frame_airtime_us(PhyRate::Ofdm(6), 1500);
        let fast = frame_airtime_us(PhyRate::Ofdm(54), 1500);
        assert!(fast < slow);
        // 1500 B at 54: 20 + ceil(12022/216)*4 = 20 + 56*4 = 244.
        assert_eq!(fast, 244);
    }

    #[test]
    fn paper_rate_beacon_is_tens_of_microseconds() {
        // A ~128-byte Wi-LE beacon at 72.2 Mb/s: preamble-dominated.
        let t = frame_airtime_us(PhyRate::WILE_PAPER, 128);
        assert!((36..=60).contains(&t), "got {t}");
    }

    #[test]
    fn sgi_never_slower() {
        for mcs in 0..=7u8 {
            for len in [14usize, 128, 1500] {
                let l = frame_airtime_us(PhyRate::Ht { mcs, sgi: false }, len);
                let s = frame_airtime_us(PhyRate::Ht { mcs, sgi: true }, len);
                assert!(s <= l, "mcs {mcs} len {len}");
            }
        }
    }

    #[test]
    fn airtime_monotone_in_length() {
        for rate in PhyRate::all() {
            let a = frame_airtime_us(rate, 50);
            let b = frame_airtime_us(rate, 500);
            let c = frame_airtime_us(rate, 1500);
            assert!(a <= b && b <= c, "{rate:?}");
        }
    }

    #[test]
    fn ack_rate_selection() {
        // ACKs to HT data go at OFDM 24; 14 bytes -> 20 + ceil(134/96)*4 = 28.
        assert_eq!(ack_airtime_us(PhyRate::WILE_PAPER), 28);
        // ACK to DSSS-1 data stays at 1 Mb/s.
        assert_eq!(ack_airtime_us(PhyRate::Dsss1), 192 + 112);
    }

    #[test]
    fn difs_from_timing() {
        assert_eq!(Timing::default().difs_us(), DIFS_US);
        assert_eq!(DIFS_US, 28);
    }
}
