//! Transmission rates of 802.11b/g/n (20 MHz, one spatial stream — the
//! ESP32's capability set).

/// Underlying modulation + coding, used by the channel model to map SNR
/// to bit error rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Modulation {
    /// 1 Mb/s DBPSK (802.11 DSSS).
    Dbpsk,
    /// 2 Mb/s DQPSK.
    Dqpsk,
    /// 5.5/11 Mb/s CCK.
    Cck,
    /// OFDM BPSK rate-1/2 or 3/4.
    Bpsk { coding_num: u8, coding_den: u8 },
    /// OFDM QPSK.
    Qpsk { coding_num: u8, coding_den: u8 },
    /// OFDM 16-QAM.
    Qam16 { coding_num: u8, coding_den: u8 },
    /// OFDM 64-QAM.
    Qam64 { coding_num: u8, coding_den: u8 },
}

/// A PHY rate the simulated radios can transmit at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyRate {
    /// 802.11 DSSS 1 Mb/s.
    Dsss1,
    /// 802.11 DSSS 2 Mb/s.
    Dsss2,
    /// 802.11b CCK 5.5 Mb/s.
    Cck5_5,
    /// 802.11b CCK 11 Mb/s.
    Cck11,
    /// 802.11g OFDM, legacy rate in Mb/s (6, 9, 12, 18, 24, 36, 48, 54).
    Ofdm(u8),
    /// 802.11n HT20 MCS 0–7; `sgi` selects the 400 ns short guard interval.
    Ht {
        /// Modulation and coding scheme index, 0–7.
        mcs: u8,
        /// Short guard interval (400 ns instead of 800 ns).
        sgi: bool,
    },
}

impl PhyRate {
    /// The rate the paper transmits Wi-LE beacons at: MCS 7, SGI → 72.2 Mb/s.
    pub const WILE_PAPER: PhyRate = PhyRate::Ht { mcs: 7, sgi: true };

    /// The mandatory lowest rate beacons are classically sent at.
    pub const BEACON_BASIC: PhyRate = PhyRate::Dsss1;

    /// Data rate in kilobits per second.
    pub fn kbps(self) -> u32 {
        match self {
            PhyRate::Dsss1 => 1_000,
            PhyRate::Dsss2 => 2_000,
            PhyRate::Cck5_5 => 5_500,
            PhyRate::Cck11 => 11_000,
            PhyRate::Ofdm(mbps) => mbps as u32 * 1_000,
            PhyRate::Ht { mcs, sgi } => {
                // HT20 single stream: data subcarriers 52, symbol 4 µs
                // (LGI) or 3.6 µs (SGI).
                let base = match mcs {
                    0 => 6_500,
                    1 => 13_000,
                    2 => 19_500,
                    3 => 26_000,
                    4 => 39_000,
                    5 => 52_000,
                    6 => 58_500,
                    7 => 65_000,
                    _ => 0,
                };
                if sgi {
                    // ×10/9 for the shorter symbol.
                    base * 10 / 9
                } else {
                    base
                }
            }
        }
    }

    /// Data bits carried per OFDM symbol (OFDM/HT rates only).
    pub fn bits_per_symbol(self) -> Option<u32> {
        match self {
            PhyRate::Ofdm(mbps) => Some(match mbps {
                6 => 24,
                9 => 36,
                12 => 48,
                18 => 72,
                24 => 96,
                36 => 144,
                48 => 192,
                54 => 216,
                _ => return None,
            }),
            PhyRate::Ht { mcs, .. } => Some(match mcs {
                0 => 26,
                1 => 52,
                2 => 78,
                3 => 104,
                4 => 156,
                5 => 208,
                6 => 234,
                7 => 260,
                _ => return None,
            }),
            _ => None,
        }
    }

    /// The modulation behind this rate, for SNR→BER mapping.
    pub fn modulation(self) -> Modulation {
        match self {
            PhyRate::Dsss1 => Modulation::Dbpsk,
            PhyRate::Dsss2 => Modulation::Dqpsk,
            PhyRate::Cck5_5 | PhyRate::Cck11 => Modulation::Cck,
            PhyRate::Ofdm(6) => Modulation::Bpsk {
                coding_num: 1,
                coding_den: 2,
            },
            PhyRate::Ofdm(9) => Modulation::Bpsk {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ofdm(12) => Modulation::Qpsk {
                coding_num: 1,
                coding_den: 2,
            },
            PhyRate::Ofdm(18) => Modulation::Qpsk {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ofdm(24) => Modulation::Qam16 {
                coding_num: 1,
                coding_den: 2,
            },
            PhyRate::Ofdm(36) => Modulation::Qam16 {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ofdm(48) => Modulation::Qam64 {
                coding_num: 2,
                coding_den: 3,
            },
            PhyRate::Ofdm(_) => Modulation::Qam64 {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ht { mcs: 0, .. } => Modulation::Bpsk {
                coding_num: 1,
                coding_den: 2,
            },
            PhyRate::Ht { mcs: 1, .. } => Modulation::Qpsk {
                coding_num: 1,
                coding_den: 2,
            },
            PhyRate::Ht { mcs: 2, .. } => Modulation::Qpsk {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ht { mcs: 3, .. } => Modulation::Qam16 {
                coding_num: 1,
                coding_den: 2,
            },
            PhyRate::Ht { mcs: 4, .. } => Modulation::Qam16 {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ht { mcs: 5, .. } => Modulation::Qam64 {
                coding_num: 2,
                coding_den: 3,
            },
            PhyRate::Ht { mcs: 6, .. } => Modulation::Qam64 {
                coding_num: 3,
                coding_den: 4,
            },
            PhyRate::Ht { .. } => Modulation::Qam64 {
                coding_num: 5,
                coding_den: 6,
            },
        }
    }

    /// Minimum SNR (dB) at which this rate decodes with usable PER, a
    /// standard rule-of-thumb sensitivity ladder.
    pub fn min_snr_db(self) -> f64 {
        match self.modulation() {
            Modulation::Dbpsk => 4.0,
            Modulation::Dqpsk => 6.0,
            Modulation::Cck => 8.0,
            Modulation::Bpsk { .. } => 5.0,
            Modulation::Qpsk { coding_num: 1, .. } => 8.0,
            Modulation::Qpsk { .. } => 10.0,
            Modulation::Qam16 { coding_num: 1, .. } => 14.0,
            Modulation::Qam16 { .. } => 17.0,
            Modulation::Qam64 { coding_num: 2, .. } => 21.0,
            Modulation::Qam64 { coding_num: 3, .. } => 23.0,
            Modulation::Qam64 { .. } => 25.0,
        }
    }

    /// Every rate this crate models, lowest to highest — handy for sweeps.
    pub fn all() -> Vec<PhyRate> {
        let mut v = vec![
            PhyRate::Dsss1,
            PhyRate::Dsss2,
            PhyRate::Cck5_5,
            PhyRate::Cck11,
        ];
        for mbps in [6u8, 9, 12, 18, 24, 36, 48, 54] {
            v.push(PhyRate::Ofdm(mbps));
        }
        for mcs in 0..=7u8 {
            v.push(PhyRate::Ht { mcs, sgi: false });
        }
        for mcs in 0..=7u8 {
            v.push(PhyRate::Ht { mcs, sgi: true });
        }
        v
    }
}

impl core::fmt::Display for PhyRate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let kbps = self.kbps();
        if kbps.is_multiple_of(1000) {
            write!(f, "{} Mb/s", kbps / 1000)
        } else {
            write!(f, "{:.1} Mb/s", kbps as f64 / 1000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_is_72_2_mbps() {
        assert_eq!(PhyRate::WILE_PAPER.kbps(), 72_222); // 65000 * 10 / 9
    }

    #[test]
    fn dsss_rates() {
        assert_eq!(PhyRate::Dsss1.kbps(), 1_000);
        assert_eq!(PhyRate::Cck11.kbps(), 11_000);
    }

    #[test]
    fn ofdm_bits_per_symbol_consistent_with_rate() {
        // rate = bits_per_symbol / 4 µs
        for mbps in [6u8, 9, 12, 18, 24, 36, 48, 54] {
            let r = PhyRate::Ofdm(mbps);
            assert_eq!(r.bits_per_symbol().unwrap(), mbps as u32 * 4, "{mbps}");
        }
    }

    #[test]
    fn ht_lgi_bits_per_symbol_consistent() {
        for mcs in 0..=7u8 {
            let r = PhyRate::Ht { mcs, sgi: false };
            // kbps = bits_per_symbol / 4µs = bps * 250
            assert_eq!(r.kbps(), r.bits_per_symbol().unwrap() * 250, "mcs {mcs}");
        }
    }

    #[test]
    fn sgi_is_ten_ninths_faster() {
        for mcs in 0..=7u8 {
            let l = PhyRate::Ht { mcs, sgi: false }.kbps();
            let s = PhyRate::Ht { mcs, sgi: true }.kbps();
            assert_eq!(s, l * 10 / 9);
        }
    }

    #[test]
    fn snr_ladder_is_monotone_within_family() {
        let ofdm: Vec<f64> = [6u8, 12, 24, 48]
            .iter()
            .map(|&m| PhyRate::Ofdm(m).min_snr_db())
            .collect();
        assert!(ofdm.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_rates_have_positive_rate() {
        for r in PhyRate::all() {
            assert!(r.kbps() > 0, "{r:?}");
        }
        assert_eq!(PhyRate::all().len(), 4 + 8 + 16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhyRate::Cck5_5.to_string(), "5.5 Mb/s");
        assert_eq!(PhyRate::Ofdm(54).to_string(), "54 Mb/s");
        assert_eq!(PhyRate::WILE_PAPER.to_string(), "72.2 Mb/s");
    }
}
