//! The WiFi channel plan, 2.4 GHz and 5 GHz.
//!
//! §1 of the paper lists among Wi-LE's advantages "enabling the use of
//! the 5 GHz spectrum (allowing devices to avoid the increasingly
//! crowded 2.4 GHz spectrum used by BLE)" — BLE cannot leave 2.4 GHz,
//! Wi-LE inherits WiFi's whole plan. This module maps channel numbers
//! to centre frequencies and answers overlap questions.

/// Which band a channel lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// 2.4 GHz ISM (channels 1–14).
    Ghz2_4,
    /// 5 GHz U-NII (channels 36–165 in 20 MHz steps).
    Ghz5,
}

/// Centre frequency in MHz of a WiFi channel, or `None` for numbers
/// outside both plans.
pub fn centre_freq_mhz(channel: u8) -> Option<u16> {
    match channel {
        1..=13 => Some(2412 + 5 * (channel as u16 - 1)),
        14 => Some(2484), // Japan-only DSSS channel
        36..=64 if channel.is_multiple_of(4) => Some(5000 + 5 * channel as u16),
        100..=144 if channel.is_multiple_of(4) => Some(5000 + 5 * channel as u16),
        149..=165 if (channel - 149).is_multiple_of(4) => Some(5000 + 5 * channel as u16),
        _ => None,
    }
}

/// The band of a channel, or `None` if the number is not allocated.
pub fn band_of(channel: u8) -> Option<Band> {
    centre_freq_mhz(channel).map(|f| if f < 3000 { Band::Ghz2_4 } else { Band::Ghz5 })
}

/// True when two 20 MHz channels overlap (their occupied spectra,
/// ~16.6 MHz each, intersect). 5 GHz channels are spaced 20 MHz apart
/// and never overlap; 2.4 GHz channels closer than 4 numbers do.
pub fn channels_overlap(a: u8, b: u8) -> bool {
    match (centre_freq_mhz(a), centre_freq_mhz(b)) {
        (Some(fa), Some(fb)) => (fa as i32 - fb as i32).abs() < 17,
        _ => false,
    }
}

/// The classic non-overlapping 2.4 GHz trio.
pub const NON_OVERLAPPING_2_4: [u8; 3] = [1, 6, 11];

/// True when `channel` is free of BLE advertising interference —
/// trivially true for all 5 GHz channels (the paper's argument), and
/// checked against the three advertising channels in 2.4 GHz.
pub fn clear_of_ble_advertising(channel: u8) -> bool {
    match band_of(channel) {
        Some(Band::Ghz5) => true,
        Some(Band::Ghz2_4) => {
            let f = centre_freq_mhz(channel).unwrap() as f64;
            // BLE advertising at 2402/2426/2480 MHz, 2 MHz wide.
            [2402.0, 2426.0, 2480.0]
                .iter()
                .all(|adv| (f - adv).abs() >= 9.3)
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_24ghz_frequencies() {
        assert_eq!(centre_freq_mhz(1), Some(2412));
        assert_eq!(centre_freq_mhz(6), Some(2437));
        assert_eq!(centre_freq_mhz(11), Some(2462));
        assert_eq!(centre_freq_mhz(14), Some(2484));
    }

    #[test]
    fn unii_frequencies() {
        assert_eq!(centre_freq_mhz(36), Some(5180));
        assert_eq!(centre_freq_mhz(40), Some(5200));
        assert_eq!(centre_freq_mhz(149), Some(5745));
        assert_eq!(centre_freq_mhz(165), Some(5825));
    }

    #[test]
    fn unallocated_numbers_rejected() {
        for ch in [0u8, 15, 35, 37, 38, 39, 63, 148, 166, 200] {
            assert_eq!(centre_freq_mhz(ch), None, "ch {ch}");
        }
    }

    #[test]
    fn band_classification() {
        assert_eq!(band_of(6), Some(Band::Ghz2_4));
        assert_eq!(band_of(36), Some(Band::Ghz5));
        assert_eq!(band_of(0), None);
    }

    #[test]
    fn the_classic_trio_does_not_overlap() {
        for (i, &a) in NON_OVERLAPPING_2_4.iter().enumerate() {
            for &b in &NON_OVERLAPPING_2_4[i + 1..] {
                assert!(!channels_overlap(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn adjacent_24ghz_channels_do_overlap() {
        assert!(channels_overlap(1, 2));
        assert!(channels_overlap(1, 3));
        assert!(channels_overlap(6, 8));
        assert!(!channels_overlap(1, 5));
    }

    #[test]
    fn five_ghz_channels_never_overlap() {
        assert!(!channels_overlap(36, 40));
        assert!(!channels_overlap(149, 153));
        // A channel trivially overlaps itself.
        assert!(channels_overlap(36, 36));
    }

    #[test]
    fn cross_band_never_overlaps() {
        assert!(!channels_overlap(11, 36));
    }

    #[test]
    fn papers_5ghz_argument() {
        // Every 5 GHz channel is clear of BLE advertising…
        for ch in [36u8, 40, 44, 100, 149, 165] {
            assert!(clear_of_ble_advertising(ch), "ch {ch}");
        }
        // …and so are the classic trio (the adv channels dodge them),
        // but channel 14 sits on 2484 MHz, 4 MHz from BLE 39.
        for ch in NON_OVERLAPPING_2_4 {
            assert!(clear_of_ble_advertising(ch), "ch {ch}");
        }
        assert!(!clear_of_ble_advertising(14));
        assert!(!clear_of_ble_advertising(0)); // unallocated
    }
}
