//! Error type shared by all parsers in this crate.

use core::fmt;

/// Errors returned by checked frame constructors and field accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The buffer is shorter than the fixed part of the structure.
    Truncated,
    /// A length field points past the end of the buffer.
    BadLength,
    /// The frame check sequence does not match the frame contents.
    BadFcs,
    /// The frame type/subtype does not match the wrapper used to parse it.
    WrongType,
    /// A field holds a value the standard does not define.
    BadValue,
    /// An information element is malformed.
    BadElement,
    /// The requested information element is not present in the frame.
    MissingElement,
    /// A builder was asked to emit something that cannot be represented
    /// (e.g. an information element body longer than 255 bytes).
    Unrepresentable,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Error::Truncated => "buffer truncated",
            Error::BadLength => "length field exceeds buffer",
            Error::BadFcs => "frame check sequence mismatch",
            Error::WrongType => "frame type does not match wrapper",
            Error::BadValue => "field value not defined by the standard",
            Error::BadElement => "malformed information element",
            Error::MissingElement => "information element not present",
            Error::Unrepresentable => "value not representable on the wire",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(Error::Truncated.to_string(), "buffer truncated");
        assert_eq!(Error::BadFcs.to_string(), "frame check sequence mismatch");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::BadLength, Error::BadLength);
        assert_ne!(Error::BadLength, Error::BadValue);
    }
}
