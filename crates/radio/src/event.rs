//! A minimal, stable discrete-event scheduler.
//!
//! Events are `(Instant, T)` pairs popped in time order; ties break by
//! insertion order so runs are reproducible regardless of payload type.
//!
//! Two implementations share the same API and — provably, see
//! `tests/props.rs` — the same pop order:
//!
//! * [`EventQueue`]: a hierarchical timer wheel. Near-periodic traffic
//!   (duty-cycled beacons) is the worst case for a binary heap — every
//!   push sifts through `log n` of the million pending wakes — while the
//!   wheel schedules in O(1) and pops in O(levels) amortised.
//! * [`NaiveEventQueue`]: the original binary heap, kept as the
//!   differential oracle in the same spirit as
//!   [`NaiveMedium`](crate::NaiveMedium).
//!
//! ## Wheel geometry
//!
//! Time is `u64` nanoseconds. The wheel has 11 levels of 64 slots; level
//! `l` indexes bits `[6l, 6l+6)` of the event time, so 11 levels cover
//! all 66 > 64 bits and no event is ever out of range. An event lives at
//! the level of the *highest bit where its time differs from the wheel's
//! `elapsed` cursor*; the cursor only ever advances to the slot base of
//! the earliest pending event, so every pending time stays `>= elapsed`
//! and placement stays canonical. Popping drains the first occupied slot
//! of the lowest occupied level; slots above level 0 are cascaded — all
//! their events re-inserted strictly further down — until the minimum
//! sits at level 0, where a slot can hold only one distinct instant and
//! its FIFO order is exactly seq order. Events scheduled *before*
//! `elapsed` (the documented legacy "fires immediately" behaviour) are
//! parked in a tiny overflow heap that always pops first; they can never
//! tie with a wheel event on time, so the (time, seq) order is identical
//! to the naive queue's.

use crate::time::{Duration, Instant};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

struct Entry<T> {
    at: Instant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits of the timestamp consumed per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per level (`2^LEVEL_BITS`).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so `LEVELS * LEVEL_BITS >= 64` bits of nanoseconds.
const LEVELS: usize = 11;

/// One wheel slot: events in insertion order plus the cached minimum
/// timestamp. Slots above level 0 only ever drain wholesale (cascade),
/// and level-0 slots hold a single distinct instant, so a push-only
/// minimum is exact.
struct Slot<T> {
    entries: VecDeque<(u64, u64, T)>,
    min_at: u64,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            entries: VecDeque::new(),
            min_at: u64::MAX,
        }
    }
}

struct Level<T> {
    /// Bitmap of non-empty slots; `trailing_zeros` finds the first.
    occupied: u64,
    slots: Vec<Slot<T>>,
}

/// The wheel level for an event at `at` given the cursor `elapsed`:
/// the level containing the highest differing bit (0 when equal).
fn level_of(elapsed: u64, at: u64) -> usize {
    let diff = elapsed ^ at;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
    }
}

/// The slot index of `at` within `level`: bits `[6l, 6l+6)`.
fn slot_of(at: u64, level: usize) -> usize {
    ((at >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// A time-ordered queue of scheduled events carrying payloads of type `T`.
///
/// ```
/// use wile_radio::{EventQueue, Instant};
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_ms(20), "b");
/// q.schedule(Instant::from_ms(10), "a");
/// q.schedule(Instant::from_ms(20), "c");
/// assert_eq!(q.pop(), Some((Instant::from_ms(10), "a")));
/// assert_eq!(q.pop(), Some((Instant::from_ms(20), "b"))); // FIFO on ties
/// assert_eq!(q.pop(), Some((Instant::from_ms(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    levels: Vec<Level<T>>,
    /// Events scheduled before `elapsed` (legacy past-scheduling); their
    /// times are strictly below every wheel event's, so "overdue pops
    /// first" preserves the exact (time, seq) order.
    overdue: BinaryHeap<Entry<T>>,
    /// The wheel cursor: every wheel event's time is `>= elapsed`, and
    /// it equals the last wheel-popped time (so `elapsed <= now`).
    elapsed: u64,
    wheel_len: usize,
    next_seq: u64,
    now: Instant,
    monotonic: bool,
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS)
                .map(|_| Level {
                    occupied: 0,
                    slots: (0..SLOTS).map(|_| Slot::new()).collect(),
                })
                .collect(),
            overdue: BinaryHeap::new(),
            elapsed: 0,
            wheel_len: 0,
            next_seq: 0,
            now: Instant::ZERO,
            monotonic: false,
        }
    }

    /// Debug-assert that every [`EventQueue::schedule`] targets the
    /// present or future (`at >=` the last popped event's time). The
    /// simulation kernel enables this so a past-scheduling bug fails
    /// loudly in debug builds instead of silently firing "immediately";
    /// release builds pay nothing.
    pub fn assert_monotonic(&mut self, on: bool) {
        self.monotonic = on;
    }

    fn wheel_insert(&mut self, at: u64, seq: u64, payload: T) {
        debug_assert!(at >= self.elapsed);
        let level = level_of(self.elapsed, at);
        let slot = slot_of(at, level);
        let s = &mut self.levels[level].slots[slot];
        s.min_at = s.min_at.min(at);
        s.entries.push_back((at, seq, payload));
        self.levels[level].occupied |= 1 << slot;
    }

    /// `(level, slot, min_at)` of the earliest wheel event. The minimum
    /// always sits in the first occupied slot of the lowest occupied
    /// level: a lower-level event agrees with `elapsed` on every bit
    /// above its level and therefore precedes anything that differs
    /// higher up.
    fn wheel_min(&self) -> Option<(usize, usize, u64)> {
        self.levels.iter().enumerate().find_map(|(l, level)| {
            (level.occupied != 0).then(|| {
                let slot = level.occupied.trailing_zeros() as usize;
                (l, slot, level.slots[slot].min_at)
            })
        })
    }

    /// Schedule `payload` to fire at `at`. Scheduling in the past (before
    /// the last popped event) is allowed but will fire "immediately" in
    /// pop order; callers that care should enable
    /// [`EventQueue::assert_monotonic`] or use
    /// [`EventQueue::schedule_after`].
    pub fn schedule(&mut self, at: Instant, payload: T) {
        if self.monotonic {
            debug_assert!(
                at >= self.now,
                "scheduled an event in the past: {at} < now {}",
                self.now
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let ns = at.as_nanos();
        if ns < self.elapsed {
            self.overdue.push(Entry { at, seq, payload });
        } else {
            self.wheel_insert(ns, seq, payload);
            self.wheel_len += 1;
        }
    }

    /// Schedule a homogeneous train of events: payload `i` fires at
    /// `start + stride * i`. This is the staggered-wake pattern fleets
    /// use at start-up (one wake per device, evenly spread over a beacon
    /// period); batching it keeps the monotonic check and seq allocation
    /// out of the per-device path and schedules the whole train in one
    /// call. A `stride` of zero schedules every payload at `start`, in
    /// FIFO order.
    pub fn schedule_batch<I>(&mut self, start: Instant, stride: Duration, payloads: I)
    where
        I: IntoIterator<Item = T>,
    {
        if self.monotonic {
            // `stride` is unsigned: `start` in the future covers the train.
            debug_assert!(
                start >= self.now,
                "scheduled an event in the past: {start} < now {}",
                self.now
            );
        }
        let stride = stride.as_nanos();
        let mut at = start.as_nanos();
        for payload in payloads {
            let seq = self.next_seq;
            self.next_seq += 1;
            if at < self.elapsed {
                self.overdue.push(Entry {
                    at: Instant::from_nanos(at),
                    seq,
                    payload,
                });
            } else {
                self.wheel_insert(at, seq, payload);
                self.wheel_len += 1;
            }
            at += stride;
        }
    }

    /// Schedule `payload` to fire `delay` after `now` and return the
    /// resulting absolute time. Because the target is expressed as a
    /// forward offset from the caller's clock, it can never land before
    /// `now` — the safe form for self-rescheduling actors.
    ///
    /// `now` is asserted (debug builds) to be at or after the queue's
    /// own notion of the present, catching callers whose local clock
    /// fell behind the events already popped.
    pub fn schedule_after(&mut self, now: Instant, delay: Duration, payload: T) -> Instant {
        debug_assert!(
            now >= self.now,
            "caller clock {now} lags the queue's now {}",
            self.now
        );
        let at = now + delay;
        self.schedule(at, payload);
        at
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Instant, T)> {
        if let Some(e) = self.overdue.pop() {
            // Overdue times are strictly below `elapsed` and every wheel
            // event; `now` still never runs backwards.
            self.now = self.now.max(e.at);
            return Some((e.at, e.payload));
        }
        loop {
            let (level, slot, _) = self.wheel_min()?;
            if level == 0 {
                // A level-0 slot holds exactly one distinct instant (the
                // slot is 1 ns wide relative to `elapsed`), so front-pop
                // is (time, seq) order.
                let s = &mut self.levels[0].slots[slot];
                let (at, _seq, payload) = s.entries.pop_front().expect("occupied slot");
                if s.entries.is_empty() {
                    s.min_at = u64::MAX;
                    self.levels[0].occupied &= !(1 << slot);
                }
                self.elapsed = at;
                self.wheel_len -= 1;
                let at = Instant::from_nanos(at);
                self.now = self.now.max(at);
                return Some((at, payload));
            }
            // Cascade: drain the whole slot, advance the cursor to its
            // base (all entries share bits >= 6*level, and nothing
            // pending is earlier), and re-insert. Every entry now
            // differs from `elapsed` only below this level, so each
            // lands strictly further down — the loop terminates. Equal
            // times follow identical slot paths at every level, so
            // insertion order survives any number of cascades.
            let s = &mut self.levels[level].slots[slot];
            let drained = std::mem::take(&mut s.entries);
            s.min_at = u64::MAX;
            self.levels[level].occupied &= !(1 << slot);
            let shift = LEVEL_BITS as usize * level;
            let base = (drained.front().expect("occupied slot").0 >> shift) << shift;
            debug_assert!(base >= self.elapsed);
            self.elapsed = base;
            for (at, seq, payload) in drained {
                debug_assert!(level_of(self.elapsed, at) < level);
                self.wheel_insert(at, seq, payload);
            }
        }
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        if let Some(e) = self.overdue.peek() {
            return Some(e.at);
        }
        self.wheel_min().map(|(_, _, min)| Instant::from_nanos(min))
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overdue.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain events up to and including `deadline`, in order.
    pub fn drain_until(&mut self, deadline: Instant) -> Vec<(Instant, T)> {
        let mut out = Vec::new();
        self.drain_until_into(deadline, &mut out);
        out
    }

    /// Drain events up to and including `deadline`, in order, appending
    /// to `out`. The allocation-free form of
    /// [`EventQueue::drain_until`] — hot loops keep one scratch buffer
    /// alive across calls instead of allocating a fresh `Vec` per poll.
    pub fn drain_until_into(&mut self, deadline: Instant, out: &mut Vec<(Instant, T)>) {
        while matches!(self.peek_time(), Some(t) if t <= deadline) {
            out.push(self.pop().expect("peeked event"));
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original binary-heap event queue, kept verbatim as the
/// differential oracle for [`EventQueue`] (the timer wheel). Same API,
/// same documented semantics; `tests/props.rs` drives both through
/// random schedule/pop interleavings and asserts identical pop streams.
pub struct NaiveEventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: Instant,
    monotonic: bool,
}

impl<T> NaiveEventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        NaiveEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
            monotonic: false,
        }
    }

    /// See [`EventQueue::assert_monotonic`].
    pub fn assert_monotonic(&mut self, on: bool) {
        self.monotonic = on;
    }

    /// See [`EventQueue::schedule`].
    pub fn schedule(&mut self, at: Instant, payload: T) {
        if self.monotonic {
            debug_assert!(
                at >= self.now,
                "scheduled an event in the past: {at} < now {}",
                self.now
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// See [`EventQueue::schedule_batch`].
    pub fn schedule_batch<I>(&mut self, start: Instant, stride: Duration, payloads: I)
    where
        I: IntoIterator<Item = T>,
    {
        let mut at = start.as_nanos();
        for payload in payloads {
            self.schedule(Instant::from_nanos(at), payload);
            at += stride.as_nanos();
        }
    }

    /// See [`EventQueue::schedule_after`].
    pub fn schedule_after(&mut self, now: Instant, delay: Duration, payload: T) -> Instant {
        debug_assert!(
            now >= self.now,
            "caller clock {now} lags the queue's now {}",
            self.now
        );
        let at = now + delay;
        self.schedule(at, payload);
        at
    }

    /// See [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<(Instant, T)> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.at);
            (e.at, e.payload)
        })
    }

    /// See [`EventQueue::peek_time`].
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// See [`EventQueue::now`].
    pub fn now(&self) -> Instant {
        self.now
    }

    /// See [`EventQueue::len`].
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// See [`EventQueue::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// See [`EventQueue::drain_until`].
    pub fn drain_until(&mut self, deadline: Instant) -> Vec<(Instant, T)> {
        let mut out = Vec::new();
        self.drain_until_into(deadline, &mut out);
        out
    }

    /// See [`EventQueue::drain_until_into`].
    pub fn drain_until_into(&mut self, deadline: Instant, out: &mut Vec<(Instant, T)>) {
        while matches!(self.peek_time(), Some(t) if t <= deadline) {
            out.push(self.pop().expect("peeked event"));
        }
    }
}

impl<T> Default for NaiveEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for ms in [5u64, 1, 9, 3] {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, [1, 3, 5, 9]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_ms(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_survive_cascades() {
        // Two equal instants far from `elapsed` share every slot path,
        // so a multi-level cascade cannot reorder them.
        let mut q = EventQueue::new();
        let far = Instant::from_secs(3600);
        q.schedule(far, "a");
        q.schedule(Instant::from_ms(1), "warm");
        q.schedule(far, "b");
        q.schedule(far, "c");
        assert_eq!(q.pop(), Some((Instant::from_ms(1), "warm")));
        assert_eq!(q.pop(), Some((far, "a")));
        assert_eq!(q.pop(), Some((far, "b")));
        assert_eq!(q.pop(), Some((far, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(4), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_ms(4));
    }

    #[test]
    fn drain_until_respects_deadline() {
        let mut q = EventQueue::new();
        for ms in 1..=10u64 {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let first = q.drain_until(Instant::from_ms(5));
        assert_eq!(first.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(Instant::from_ms(6)));
    }

    #[test]
    fn drain_until_into_reuses_the_buffer() {
        let mut q = EventQueue::new();
        for ms in 1..=6u64 {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let mut buf = Vec::with_capacity(8);
        q.drain_until_into(Instant::from_ms(3), &mut buf);
        assert_eq!(buf.len(), 3);
        let cap = buf.capacity();
        buf.clear();
        q.drain_until_into(Instant::from_ms(10), &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), cap, "no reallocation");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(10), "first");
        let (t, _) = q.pop().unwrap();
        // Self-rescheduling pattern used by periodic transmitters.
        q.schedule(t + Duration::from_ms(10), "second");
        assert_eq!(q.pop().unwrap().0, Instant::from_ms(20));
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn past_scheduling_fires_immediately_without_monotonic_mode() {
        // The documented legacy behaviour: a past event is accepted and
        // pops before anything later, in FIFO order among the overdue.
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(50), "future");
        q.pop();
        assert_eq!(q.now(), Instant::from_ms(50));
        q.schedule(Instant::from_ms(10), "late-a");
        q.schedule(Instant::from_ms(10), "late-b");
        q.schedule(Instant::from_ms(60), "on-time");
        assert_eq!(q.pop(), Some((Instant::from_ms(10), "late-a")));
        assert_eq!(q.pop(), Some((Instant::from_ms(10), "late-b")));
        // `now` never runs backwards even when overdue events fire.
        assert_eq!(q.now(), Instant::from_ms(50));
        assert_eq!(q.pop(), Some((Instant::from_ms(60), "on-time")));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "scheduled an event in the past")
    )]
    fn monotonic_mode_rejects_past_scheduling_in_debug() {
        let mut q = EventQueue::new();
        q.assert_monotonic(true);
        q.schedule(Instant::from_ms(50), ());
        q.pop();
        q.schedule(Instant::from_ms(10), ());
        // In release builds the debug_assert compiles out and the event
        // is accepted (legacy behaviour); make the test pass there too.
        #[cfg(not(debug_assertions))]
        panic!("scheduled an event in the past (release-mode stand-in)");
    }

    #[test]
    fn schedule_after_lands_at_now_plus_delay() {
        let mut q = EventQueue::new();
        q.assert_monotonic(true);
        q.schedule(Instant::from_ms(5), "seed");
        let (t, _) = q.pop().unwrap();
        let at = q.schedule_after(t, Duration::from_ms(7), "next");
        assert_eq!(at, Instant::from_ms(12));
        assert_eq!(q.pop(), Some((Instant::from_ms(12), "next")));
        // Zero delay is valid: fires at `now`, after nothing.
        q.schedule_after(at, Duration::ZERO, "immediate");
        assert_eq!(q.pop(), Some((Instant::from_ms(12), "immediate")));
    }

    #[test]
    fn schedule_batch_staggers_a_wake_train() {
        let mut q = EventQueue::new();
        q.schedule_batch(Instant::from_ms(500), Duration::from_us(250), 0..4u32);
        q.schedule(Instant::from_ms(500) + Duration::from_us(250), 99);
        let order: Vec<(Instant, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Instant::from_ms(500), 0),
                (Instant::from_ms(500) + Duration::from_us(250), 1),
                (Instant::from_ms(500) + Duration::from_us(250), 99),
                (Instant::from_ms(500) + Duration::from_us(500), 2),
                (Instant::from_ms(500) + Duration::from_us(750), 3),
            ]
        );
    }

    #[test]
    fn wheel_matches_naive_on_a_periodic_mix() {
        // A deterministic mini-differential: staggered periodic wakes,
        // far-future timers, same-instant bursts, and interleaved pops.
        let mut wheel = EventQueue::new();
        let mut naive = NaiveEventQueue::new();
        let mut label = 0u64;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..50u64 {
            for _ in 0..(rand() % 8) {
                let at = Instant::from_nanos(round * 1_000_000 + rand() % 5_000_000);
                wheel.schedule(at, label);
                naive.schedule(at, label);
                label += 1;
            }
            for _ in 0..(rand() % 6) {
                assert_eq!(wheel.pop(), naive.pop());
                assert_eq!(wheel.now(), naive.now());
            }
            assert_eq!(wheel.peek_time(), naive.peek_time());
            assert_eq!(wheel.len(), naive.len());
        }
        loop {
            let (a, b) = (wheel.pop(), naive.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
