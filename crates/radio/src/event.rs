//! A minimal, stable discrete-event scheduler.
//!
//! Events are `(Instant, T)` pairs popped in time order; ties break by
//! insertion order so runs are reproducible regardless of payload type.

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Instant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of scheduled events carrying payloads of type `T`.
///
/// ```
/// use wile_radio::{EventQueue, Instant};
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_ms(20), "b");
/// q.schedule(Instant::from_ms(10), "a");
/// q.schedule(Instant::from_ms(20), "c");
/// assert_eq!(q.pop(), Some((Instant::from_ms(10), "a")));
/// assert_eq!(q.pop(), Some((Instant::from_ms(20), "b"))); // FIFO on ties
/// assert_eq!(q.pop(), Some((Instant::from_ms(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: Instant,
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`. Scheduling in the past (before
    /// the last popped event) is allowed but will fire "immediately" in
    /// pop order; callers that care should assert monotonicity themselves.
    pub fn schedule(&mut self, at: Instant, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Instant, T)> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.at);
            (e.at, e.payload)
        })
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain events up to and including `deadline`, in order.
    pub fn drain_until(&mut self, deadline: Instant) -> Vec<(Instant, T)> {
        let mut out = Vec::new();
        while matches!(self.peek_time(), Some(t) if t <= deadline) {
            out.push(self.pop().unwrap());
        }
        out
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for ms in [5u64, 1, 9, 3] {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, [1, 3, 5, 9]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_ms(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(4), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_ms(4));
    }

    #[test]
    fn drain_until_respects_deadline() {
        let mut q = EventQueue::new();
        for ms in 1..=10u64 {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let first = q.drain_until(Instant::from_ms(5));
        assert_eq!(first.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(Instant::from_ms(6)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(10), "first");
        let (t, _) = q.pop().unwrap();
        // Self-rescheduling pattern used by periodic transmitters.
        q.schedule(t + Duration::from_ms(10), "second");
        assert_eq!(q.pop().unwrap().0, Instant::from_ms(20));
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
