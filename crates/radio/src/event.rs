//! A minimal, stable discrete-event scheduler.
//!
//! Events are `(Instant, T)` pairs popped in time order; ties break by
//! insertion order so runs are reproducible regardless of payload type.

use crate::time::{Duration, Instant};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Instant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of scheduled events carrying payloads of type `T`.
///
/// ```
/// use wile_radio::{EventQueue, Instant};
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_ms(20), "b");
/// q.schedule(Instant::from_ms(10), "a");
/// q.schedule(Instant::from_ms(20), "c");
/// assert_eq!(q.pop(), Some((Instant::from_ms(10), "a")));
/// assert_eq!(q.pop(), Some((Instant::from_ms(20), "b"))); // FIFO on ties
/// assert_eq!(q.pop(), Some((Instant::from_ms(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: Instant,
    monotonic: bool,
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
            monotonic: false,
        }
    }

    /// Debug-assert that every [`EventQueue::schedule`] targets the
    /// present or future (`at >=` the last popped event's time). The
    /// simulation kernel enables this so a past-scheduling bug fails
    /// loudly in debug builds instead of silently firing "immediately";
    /// release builds pay nothing.
    pub fn assert_monotonic(&mut self, on: bool) {
        self.monotonic = on;
    }

    /// Schedule `payload` to fire at `at`. Scheduling in the past (before
    /// the last popped event) is allowed but will fire "immediately" in
    /// pop order; callers that care should enable
    /// [`EventQueue::assert_monotonic`] or use
    /// [`EventQueue::schedule_after`].
    pub fn schedule(&mut self, at: Instant, payload: T) {
        if self.monotonic {
            debug_assert!(
                at >= self.now,
                "scheduled an event in the past: {at} < now {}",
                self.now
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` to fire `delay` after `now` and return the
    /// resulting absolute time. Because the target is expressed as a
    /// forward offset from the caller's clock, it can never land before
    /// `now` — the safe form for self-rescheduling actors.
    ///
    /// `now` is asserted (debug builds) to be at or after the queue's
    /// own notion of the present, catching callers whose local clock
    /// fell behind the events already popped.
    pub fn schedule_after(&mut self, now: Instant, delay: Duration, payload: T) -> Instant {
        debug_assert!(
            now >= self.now,
            "caller clock {now} lags the queue's now {}",
            self.now
        );
        let at = now + delay;
        self.schedule(at, payload);
        at
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Instant, T)> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.at);
            (e.at, e.payload)
        })
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain events up to and including `deadline`, in order.
    pub fn drain_until(&mut self, deadline: Instant) -> Vec<(Instant, T)> {
        let mut out = Vec::new();
        while matches!(self.peek_time(), Some(t) if t <= deadline) {
            out.push(self.pop().unwrap());
        }
        out
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for ms in [5u64, 1, 9, 3] {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, [1, 3, 5, 9]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_ms(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(4), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_ms(4));
    }

    #[test]
    fn drain_until_respects_deadline() {
        let mut q = EventQueue::new();
        for ms in 1..=10u64 {
            q.schedule(Instant::from_ms(ms), ms);
        }
        let first = q.drain_until(Instant::from_ms(5));
        assert_eq!(first.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(Instant::from_ms(6)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(10), "first");
        let (t, _) = q.pop().unwrap();
        // Self-rescheduling pattern used by periodic transmitters.
        q.schedule(t + Duration::from_ms(10), "second");
        assert_eq!(q.pop().unwrap().0, Instant::from_ms(20));
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn past_scheduling_fires_immediately_without_monotonic_mode() {
        // The documented legacy behaviour: a past event is accepted and
        // pops before anything later, in FIFO order among the overdue.
        let mut q = EventQueue::new();
        q.schedule(Instant::from_ms(50), "future");
        q.pop();
        assert_eq!(q.now(), Instant::from_ms(50));
        q.schedule(Instant::from_ms(10), "late-a");
        q.schedule(Instant::from_ms(10), "late-b");
        q.schedule(Instant::from_ms(60), "on-time");
        assert_eq!(q.pop(), Some((Instant::from_ms(10), "late-a")));
        assert_eq!(q.pop(), Some((Instant::from_ms(10), "late-b")));
        // `now` never runs backwards even when overdue events fire.
        assert_eq!(q.now(), Instant::from_ms(50));
        assert_eq!(q.pop(), Some((Instant::from_ms(60), "on-time")));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "scheduled an event in the past")
    )]
    fn monotonic_mode_rejects_past_scheduling_in_debug() {
        let mut q = EventQueue::new();
        q.assert_monotonic(true);
        q.schedule(Instant::from_ms(50), ());
        q.pop();
        q.schedule(Instant::from_ms(10), ());
        // In release builds the debug_assert compiles out and the event
        // is accepted (legacy behaviour); make the test pass there too.
        #[cfg(not(debug_assertions))]
        panic!("scheduled an event in the past (release-mode stand-in)");
    }

    #[test]
    fn schedule_after_lands_at_now_plus_delay() {
        let mut q = EventQueue::new();
        q.assert_monotonic(true);
        q.schedule(Instant::from_ms(5), "seed");
        let (t, _) = q.pop().unwrap();
        let at = q.schedule_after(t, Duration::from_ms(7), "next");
        assert_eq!(at, Instant::from_ms(12));
        assert_eq!(q.pop(), Some((Instant::from_ms(12), "next")));
        // Zero delay is valid: fires at `now`, after nothing.
        q.schedule_after(at, Duration::ZERO, "immediate");
        assert_eq!(q.pop(), Some((Instant::from_ms(12), "immediate")));
    }
}
