//! Gilbert–Elliott two-state bursty loss model.
//!
//! The Bernoulli injector in [`crate::fault`] draws every frame
//! independently, but 2.4 GHz losses are not independent: microwave
//! ovens, frequency-hopping Bluetooth, and Wi-Fi data bursts produce
//! *runs* of destroyed frames. The classic two-state Markov model
//! (Gilbert 1960, Elliott 1963) captures exactly that: a **Good** state
//! with low loss and a **Bad** state with high loss, with geometric
//! dwell times in each.
//!
//! The chain here is discrete-time with a configurable step length, so
//! the burstiness is expressed in *time* rather than in frames: two
//! repeats of a beacon 5 ms apart see nearly the same channel state,
//! while messages a period apart see nearly independent states. That is
//! the property that makes fixed k-repetition the wrong tool under
//! bursts — and what the adaptive policy in `wile::reliability` is
//! measured against.
//!
//! Determinism: the chain is seeded and advanced only by explicit
//! calls, so a run is reproducible frame-for-frame.

use crate::time::{Duration, Instant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which state the channel is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low-loss state.
    Good,
    /// High-loss (burst) state.
    Bad,
}

/// The two-state bursty loss channel.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// Per-step probability of leaving Good for Bad.
    pub p_enter: f64,
    /// Per-step probability of leaving Bad for Good.
    pub p_exit: f64,
    /// Frame loss probability while Good.
    pub loss_good: f64,
    /// Frame loss probability while Bad.
    pub loss_bad: f64,
    /// Length of one chain step.
    step: Duration,
    state: ChannelState,
    /// The chain has been advanced up to this instant.
    advanced_to: Instant,
    rng: StdRng,
}

impl GilbertElliott {
    /// A model with explicit per-step transition and per-state loss
    /// probabilities. `step` is the chain's time resolution; dwell
    /// times are geometric with means `step / p_enter` (Good) and
    /// `step / p_exit` (Bad).
    pub fn new(
        p_enter: f64,
        p_exit: f64,
        loss_good: f64,
        loss_bad: f64,
        step: Duration,
        seed: u64,
    ) -> Self {
        for p in [p_enter, p_exit, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        assert!(
            p_enter > 0.0 && p_exit > 0.0,
            "absorbing states make the stationary distribution degenerate"
        );
        assert!(step > Duration::ZERO, "zero-length chain step");
        let mut rng = StdRng::seed_from_u64(seed);
        // Start from the stationary distribution so statistics hold
        // from the first frame, not only asymptotically.
        let pi_bad = p_enter / (p_enter + p_exit);
        let state = if rng.gen_bool(pi_bad) {
            ChannelState::Bad
        } else {
            ChannelState::Good
        };
        GilbertElliott {
            p_enter,
            p_exit,
            loss_good,
            loss_bad,
            step,
            state,
            advanced_to: Instant::ZERO,
            rng,
        }
    }

    /// The classic Gilbert model: lossless Good state, total loss in
    /// the Bad state, with the given mean dwell times.
    pub fn from_dwell_times(good_dwell: Duration, bad_dwell: Duration, seed: u64) -> Self {
        // 10 ms resolution unless the dwells themselves are shorter.
        let step = Duration::from_ms(10)
            .min(good_dwell)
            .min(bad_dwell)
            .max(Duration::from_us(100));
        let p_enter = (step.as_nanos() as f64 / good_dwell.as_nanos() as f64).min(1.0);
        let p_exit = (step.as_nanos() as f64 / bad_dwell.as_nanos() as f64).min(1.0);
        GilbertElliott::new(p_enter, p_exit, 0.0, 1.0, step, seed)
    }

    /// Current state (without advancing the chain).
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Stationary probability of being in the Bad state:
    /// `p_enter / (p_enter + p_exit)`.
    pub fn stationary_bad(&self) -> f64 {
        self.p_enter / (self.p_enter + self.p_exit)
    }

    /// Closed-form long-run frame loss rate:
    /// `π_G·loss_good + π_B·loss_bad`.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }

    /// Mean Bad-state dwell time.
    pub fn mean_burst(&self) -> Duration {
        Duration::from_nanos((self.step.as_nanos() as f64 / self.p_exit).round() as u64)
    }

    /// Advance the chain one step and report whether a frame sent in
    /// the *new* state is lost. This is the frame-clocked interface the
    /// stationary-statistics property test uses.
    pub fn next_frame(&mut self) -> bool {
        self.step_once();
        self.sample_loss()
    }

    /// Advance the chain to `at` (whole elapsed steps) and report
    /// whether a frame arriving at `at` is lost. Time-clocked: frames
    /// close together in time see correlated states.
    pub fn frame_lost(&mut self, at: Instant) -> bool {
        if at > self.advanced_to {
            let steps = at.since(self.advanced_to).as_nanos() / self.step.as_nanos();
            // Cap the walk: beyond ~64 mixing times the state is
            // indistinguishable from a fresh stationary draw.
            let mixing_cap = (64.0 / self.p_enter.min(self.p_exit)).ceil() as u64;
            for _ in 0..steps.min(mixing_cap) {
                self.step_once();
            }
            self.advanced_to += Duration::from_nanos(steps * self.step.as_nanos());
        }
        self.sample_loss()
    }

    fn step_once(&mut self) {
        let flip = match self.state {
            ChannelState::Good => self.rng.gen_bool(self.p_enter),
            ChannelState::Bad => self.rng.gen_bool(self.p_exit),
        };
        if flip {
            self.state = match self.state {
                ChannelState::Good => ChannelState::Bad,
                ChannelState::Bad => ChannelState::Good,
            };
        }
    }

    fn sample_loss(&mut self) -> bool {
        let p = match self.state {
            ChannelState::Good => self.loss_good,
            ChannelState::Bad => self.loss_bad,
        };
        p > 0.0 && self.rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_loss_closed_form() {
        let g = GilbertElliott::new(0.1, 0.4, 0.01, 0.9, Duration::from_ms(10), 1);
        let pi_bad = 0.1 / 0.5;
        let want = 0.8 * 0.01 + pi_bad * 0.9;
        assert!((g.stationary_loss() - want).abs() < 1e-12);
    }

    #[test]
    fn losses_come_in_bursts() {
        // Mean run length of losses must exceed i.i.d.'s at the same
        // average rate: that is the whole point of the model.
        let mut g =
            GilbertElliott::from_dwell_times(Duration::from_ms(900), Duration::from_ms(100), 7);
        let outcomes: Vec<bool> = (0..20_000).map(|_| g.next_frame()).collect();
        let loss_rate = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        assert!((loss_rate - 0.1).abs() < 0.03, "loss rate {loss_rate}");
        // Mean loss-run length: i.i.d. at 10 % would give ~1.11.
        let mut runs = Vec::new();
        let mut cur = 0usize;
        for &l in &outcomes {
            if l {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean_run > 3.0, "mean run {mean_run} — not bursty");
    }

    #[test]
    fn time_clocked_correlation() {
        // Two frames 1 ms apart agree far more often than two frames
        // 10 s apart.
        let agreement = |gap: Duration| {
            let mut g =
                GilbertElliott::from_dwell_times(Duration::from_ms(500), Duration::from_ms(500), 3);
            let mut t = Instant::ZERO;
            let mut agree = 0;
            let n = 2_000;
            for _ in 0..n {
                t += Duration::from_secs(30); // decorrelate pairs
                let a = g.frame_lost(t);
                let b = g.frame_lost(t + gap);
                if a == b {
                    agree += 1;
                }
            }
            agree as f64 / n as f64
        };
        let close = agreement(Duration::from_ms(1));
        let far = agreement(Duration::from_secs(10));
        assert!(close > 0.95, "close {close}");
        assert!(far < 0.8, "far {far}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut g = GilbertElliott::new(0.05, 0.2, 0.0, 1.0, Duration::from_ms(5), seed);
            (0..500).map(|_| g.next_frame()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic]
    fn rejects_absorbing_chain() {
        GilbertElliott::new(0.0, 0.5, 0.0, 1.0, Duration::from_ms(1), 0);
    }
}
