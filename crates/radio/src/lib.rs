//! # wile-radio — deterministic discrete-event wireless medium
//!
//! The substitute for the paper's physical testbed air interface: a
//! single-threaded, fully deterministic simulator in the spirit of
//! smoltcp (event-driven, no async runtime, explicit state).
//!
//! * [`time`] — virtual [`time::Instant`]/[`time::Duration`] in integer
//!   nanoseconds; nothing in the workspace reads the wall clock.
//! * [`event`] — a stable event scheduler for multi-device scenarios
//!   (the §6 "network of IoT devices" study): a hierarchical timer
//!   wheel, with the original binary heap retained as the differential
//!   reference.
//! * [`channel`] — log-distance path loss, noise floor, SNR.
//! * [`per`] — SNR → packet error rate per modulation family.
//! * [`clock`] — per-device oscillators with ppm drift and white jitter;
//!   the paper's §6 argument that same-period transmitters "automatically
//!   differ away from each other due to the jitter of their clocks" is
//!   exercised through these.
//! * [`medium`] — the broadcast medium: transmissions, propagation,
//!   collisions with capture, per-receiver delivery; indexed per channel
//!   with memoized link budgets and optional bounded-memory retirement.
//! * [`naive`] — the original unoptimized medium, retained as the
//!   reference implementation for differential property tests.
//! * [`fault`] — smoltcp-style fault injection (random drop, single-bit
//!   or burst corruption).
//! * [`gilbert`] — Gilbert–Elliott two-state bursty loss channel.
//! * [`plan`] — time-scheduled fault plans (interferers, jammers,
//!   gateway outages, clock-skew steps) for robustness campaigns.
//! * [`pcap`] — dump everything the medium carried to a libpcap file
//!   (LINKTYPE_IEEE802_11) for inspection in Wireshark.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel;
pub mod clock;
pub mod event;
pub mod fault;
pub mod gilbert;
pub mod medium;
pub mod naive;
pub mod pcap;
pub mod per;
pub mod plan;
pub mod stats;
pub mod time;

pub use channel::ChannelModel;
pub use clock::DriftClock;
pub use event::{EventQueue, NaiveEventQueue};
pub use fault::{CorruptionMode, FaultInjector, FaultOutcome};
pub use gilbert::{ChannelState, GilbertElliott};
pub use medium::{Medium, RadioConfig, RadioId, RxFrame};
pub use naive::NaiveMedium;
pub use plan::{Disturbance, FaultPhase, FaultPlan, FaultTimeline};
pub use stats::MediumStats;
pub use time::{Duration, Instant};
