//! SNR → packet error rate.
//!
//! We use the standard waterfall approximation: each modulation family
//! has a threshold SNR at which a 1000-byte frame decodes with ~50 %
//! loss, and a logistic transition a couple of dB wide. Shorter frames
//! shift the curve left (fewer bits at risk). This reproduces the
//! qualitative behaviour rate adaptation and range arguments rely on
//! without a full link-level simulation.

/// Packet error rate for a frame of `len_bytes` at `snr_db`, where the
/// modulation is summarized by its `min_snr_db` decode threshold (see
/// `wile_dot11::phy::PhyRate::min_snr_db`).
///
/// Returns a probability in `[0, 1]`.
pub fn packet_error_rate(snr_db: f64, min_snr_db: f64, len_bytes: usize) -> f64 {
    // Threshold is quoted for 1000-byte frames; each decade of length
    // shifts it by ~1.5 dB.
    let len_shift = 1.5 * ((len_bytes.max(1) as f64) / 1000.0).log10();
    let midpoint = min_snr_db + len_shift;
    let width = 1.2; // dB from mid to ~88% / ~12%
    let x = (snr_db - midpoint) / width;
    1.0 / (1.0 + x.exp())
}

/// Convenience: expected number of transmissions (including the first)
/// for one success under independent losses — diverges as PER → 1.
pub fn expected_attempts(per: f64) -> f64 {
    if per >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_decreasing_in_snr() {
        let mut last = 1.0;
        for snr in -10..40 {
            let per = packet_error_rate(snr as f64, 15.0, 1000);
            assert!(per <= last + 1e-12, "snr {snr}");
            last = per;
        }
    }

    #[test]
    fn midpoint_is_half() {
        let per = packet_error_rate(15.0, 15.0, 1000);
        assert!((per - 0.5).abs() < 1e-9);
    }

    #[test]
    fn strong_signal_near_zero_loss() {
        assert!(packet_error_rate(40.0, 15.0, 1000) < 1e-6);
    }

    #[test]
    fn weak_signal_near_total_loss() {
        assert!(packet_error_rate(0.0, 15.0, 1000) > 0.999);
    }

    #[test]
    fn shorter_frames_survive_better() {
        let snr = 15.0;
        let short = packet_error_rate(snr, 15.0, 50);
        let long = packet_error_rate(snr, 15.0, 1500);
        assert!(short < long);
    }

    #[test]
    fn per_in_unit_interval() {
        for snr in [-50.0, 0.0, 14.9, 15.1, 100.0] {
            for len in [1usize, 100, 2304] {
                let p = packet_error_rate(snr, 15.0, len);
                assert!((0.0..=1.0).contains(&p), "snr {snr} len {len}");
            }
        }
    }

    #[test]
    fn expected_attempts_behaviour() {
        assert_eq!(expected_attempts(0.0), 1.0);
        assert!((expected_attempts(0.5) - 2.0).abs() < 1e-12);
        assert!(expected_attempts(1.0).is_infinite());
    }
}
