//! Per-device oscillators with frequency error (ppm) and white timer
//! jitter.
//!
//! §6 of the paper argues that two Wi-LE devices transmitting with the
//! same nominal period will not collide forever because "their
//! transmissions will automatically differ away from each other due to
//! the jitter of their clocks". [`DriftClock`] models exactly that: a
//! crystal with a fixed ppm error plus bounded white jitter on each
//! scheduled wakeup, so nominal-equal periods drift apart at
//! `ppm_delta × period` per cycle.

use crate::time::{Duration, Instant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A device-local clock that converts nominal (local) durations into
/// true simulation durations.
#[derive(Debug, Clone)]
pub struct DriftClock {
    /// Fixed fractional frequency error, parts per million. Positive runs
    /// fast (true durations shorter than nominal).
    ppm: f64,
    /// Uniform white jitter bound applied per conversion, ± this many
    /// nanoseconds.
    jitter_ns: u64,
    rng: StdRng,
}

impl DriftClock {
    /// An ideal clock (no drift, no jitter).
    pub fn ideal() -> Self {
        DriftClock {
            ppm: 0.0,
            jitter_ns: 0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// A clock with the given ppm error and per-wakeup jitter, seeded for
    /// reproducibility.
    pub fn new(ppm: f64, jitter: Duration, seed: u64) -> Self {
        DriftClock {
            ppm,
            jitter_ns: jitter.as_nanos(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A typical IoT-grade crystal: ±20 ppm error drawn from the seed,
    /// ±100 µs timer wakeup jitter.
    pub fn iot_grade(seed: u64) -> Self {
        let mut seeder = StdRng::seed_from_u64(seed);
        let ppm = seeder.gen_range(-20.0..20.0);
        DriftClock {
            ppm,
            jitter_ns: 100_000,
            rng: seeder,
        }
    }

    /// The fixed frequency error, ppm.
    pub fn ppm(&self) -> f64 {
        self.ppm
    }

    /// Shift the frequency error by `delta_ppm` (a temperature step or
    /// a scheduled [`crate::plan::Disturbance::ClockSkew`] phase).
    /// Call again with the negated delta when the step ends.
    pub fn shift_ppm(&mut self, delta_ppm: f64) {
        self.ppm += delta_ppm;
    }

    /// Convert a nominal local duration to the true duration that
    /// elapses, applying drift and fresh jitter.
    pub fn true_duration(&mut self, nominal: Duration) -> Duration {
        let scaled = nominal.as_nanos() as f64 * (1.0 - self.ppm * 1e-6);
        let jitter = if self.jitter_ns == 0 {
            0.0
        } else {
            self.rng
                .gen_range(-(self.jitter_ns as f64)..=self.jitter_ns as f64)
        };
        Duration::from_nanos((scaled + jitter).max(0.0).round() as u64)
    }

    /// The instant after sleeping `nominal` starting at `from`.
    pub fn wake_after(&mut self, from: Instant, nominal: Duration) -> Instant {
        from + self.true_duration(nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_is_exact() {
        let mut c = DriftClock::ideal();
        assert_eq!(
            c.true_duration(Duration::from_secs(600)),
            Duration::from_secs(600)
        );
    }

    #[test]
    fn positive_ppm_runs_fast() {
        let mut c = DriftClock::new(20.0, Duration::ZERO, 1);
        let d = c.true_duration(Duration::from_secs(1_000));
        // 20 ppm of 1000 s = 20 ms early.
        assert_eq!(d, Duration::from_nanos(1_000_000_000_000 - 20_000_000));
    }

    #[test]
    fn negative_ppm_runs_slow() {
        let mut c = DriftClock::new(-20.0, Duration::ZERO, 1);
        let d = c.true_duration(Duration::from_secs(1_000));
        assert!(d > Duration::from_secs(1_000));
    }

    #[test]
    fn jitter_is_bounded_and_varying() {
        let mut c = DriftClock::new(0.0, Duration::from_us(100), 7);
        let nominal = Duration::from_ms(100);
        let mut seen_different = false;
        let mut prev = None;
        for _ in 0..100 {
            let d = c.true_duration(nominal);
            let err = (d.as_nanos() as i64 - nominal.as_nanos() as i64).abs();
            assert!(err <= 100_000, "err {err}");
            if prev.is_some() && prev != Some(d) {
                seen_different = true;
            }
            prev = Some(d);
        }
        assert!(seen_different);
    }

    #[test]
    fn seeded_clocks_reproduce() {
        let mut a = DriftClock::iot_grade(42);
        let mut b = DriftClock::iot_grade(42);
        for _ in 0..10 {
            assert_eq!(
                a.true_duration(Duration::from_secs(1)),
                b.true_duration(Duration::from_secs(1))
            );
        }
    }

    #[test]
    fn distinct_seeds_get_distinct_ppm() {
        let a = DriftClock::iot_grade(1);
        let b = DriftClock::iot_grade(2);
        assert_ne!(a.ppm(), b.ppm());
        assert!(a.ppm().abs() < 20.0);
    }

    #[test]
    fn equal_periods_drift_apart() {
        // The §6 claim: two devices, same nominal period, different
        // crystals -- their transmit instants separate over time.
        let mut a = DriftClock::new(10.0, Duration::ZERO, 1);
        let mut b = DriftClock::new(-10.0, Duration::ZERO, 2);
        let period = Duration::from_secs(600);
        let mut ta = Instant::ZERO;
        let mut tb = Instant::ZERO;
        for _ in 0..10 {
            ta = a.wake_after(ta, period);
            tb = b.wake_after(tb, period);
        }
        // 20 ppm relative over 6000 s = 120 ms separation.
        let sep = tb.since(ta);
        assert_eq!(sep, Duration::from_ms(120));
    }

    #[test]
    fn wake_never_goes_backwards() {
        let mut c = DriftClock::new(500_000.0, Duration::from_ms(1), 3);
        let t = c.wake_after(Instant::from_ms(5), Duration::from_nanos(10));
        assert!(t >= Instant::from_ms(5));
    }
}
