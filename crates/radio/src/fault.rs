//! Fault injection, after smoltcp's example: random frame drops and
//! single-**bit** corruption, applied between the medium and a receiver.
//! A burst mode ([`CorruptionMode::Burst`]) scrambles a run of
//! contiguous octets instead, modelling a co-channel collision that
//! overlaps part of the frame; the campaign runner in `wile-scenarios`
//! uses it for its interferer phases.
//!
//! Corrupted frames keep their (now wrong) FCS, so receivers exercising
//! `wile_dot11::fcs::check_fcs` discard them exactly as hardware would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the injector decided to do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Frame passes unmodified.
    Pass,
    /// Frame silently dropped.
    Dropped,
    /// The frame was damaged per the injector's [`CorruptionMode`].
    Corrupted,
}

/// How a corruption event damages a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Flip exactly one random bit — a marginal-SNR symbol error.
    SingleBit,
    /// XOR-scramble up to `octets` contiguous octets starting at a
    /// random offset — a partial overlap with another transmission.
    /// Runs are clamped to the frame length; each damaged octet is
    /// XORed with a non-zero random byte so it always changes.
    Burst {
        /// Maximum run length in octets (≥ 1).
        octets: usize,
    },
}

/// Random drop / corrupt injector with deterministic seeding.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability in `[0,1]` that a frame is dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that a surviving frame is corrupted per
    /// [`Self::corruption`].
    pub corrupt_chance: f64,
    /// Damage applied to frames selected for corruption.
    pub corruption: CorruptionMode,
    rng: StdRng,
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            corruption: CorruptionMode::SingleBit,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// An injector with the given probabilities and seed, using the
    /// default [`CorruptionMode::SingleBit`] damage.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        Self::with_mode(drop_chance, corrupt_chance, CorruptionMode::SingleBit, seed)
    }

    /// An injector with an explicit corruption mode.
    pub fn with_mode(
        drop_chance: f64,
        corrupt_chance: f64,
        corruption: CorruptionMode,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance) && (0.0..=1.0).contains(&corrupt_chance));
        if let CorruptionMode::Burst { octets } = corruption {
            assert!(octets >= 1, "burst length must be at least one octet");
        }
        FaultInjector {
            drop_chance,
            corrupt_chance,
            corruption,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Apply faults to `frame` in place; returns what happened.
    pub fn apply(&mut self, frame: &mut [u8]) -> FaultOutcome {
        if self.drop_chance > 0.0 && self.rng.gen_bool(self.drop_chance) {
            return FaultOutcome::Dropped;
        }
        if self.corrupt_chance > 0.0 && !frame.is_empty() && self.rng.gen_bool(self.corrupt_chance)
        {
            match self.corruption {
                CorruptionMode::SingleBit => {
                    let idx = self.rng.gen_range(0..frame.len());
                    let bit = 1u8 << self.rng.gen_range(0..8);
                    frame[idx] ^= bit;
                }
                CorruptionMode::Burst { octets } => {
                    let run = self.rng.gen_range(1..=octets.min(frame.len()));
                    let start = self.rng.gen_range(0..=frame.len() - run);
                    for b in &mut frame[start..start + run] {
                        *b ^= self.rng.gen_range(1..=255u8);
                    }
                }
            }
            return FaultOutcome::Corrupted;
        }
        FaultOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_passes_everything() {
        let mut inj = FaultInjector::none();
        for _ in 0..1000 {
            let mut f = vec![1, 2, 3];
            assert_eq!(inj.apply(&mut f), FaultOutcome::Pass);
            assert_eq!(f, [1, 2, 3]);
        }
    }

    #[test]
    fn always_drop() {
        let mut inj = FaultInjector::new(1.0, 0.0, 1);
        let mut f = vec![1];
        assert_eq!(inj.apply(&mut f), FaultOutcome::Dropped);
    }

    #[test]
    fn always_corrupt_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(0.0, 1.0, 2);
        let orig = vec![0u8; 64];
        for _ in 0..100 {
            let mut f = orig.clone();
            assert_eq!(inj.apply(&mut f), FaultOutcome::Corrupted);
            let flipped: u32 = f.iter().zip(&orig).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(flipped, 1);
        }
    }

    #[test]
    fn statistics_roughly_match_probability() {
        let mut inj = FaultInjector::new(0.3, 0.0, 3);
        let mut drops = 0;
        for _ in 0..10_000 {
            let mut f = vec![0u8];
            if inj.apply(&mut f) == FaultOutcome::Dropped {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn corrupting_empty_frame_is_safe() {
        let mut inj = FaultInjector::new(0.0, 1.0, 4);
        let mut f = Vec::new();
        assert_eq!(inj.apply(&mut f), FaultOutcome::Pass);
    }

    #[test]
    fn seeded_reproducibility() {
        let run = |seed| {
            let mut inj = FaultInjector::new(0.5, 0.5, seed);
            (0..100)
                .map(|_| {
                    let mut f = vec![0u8; 16];
                    inj.apply(&mut f)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        FaultInjector::new(1.5, 0.0, 0);
    }

    #[test]
    fn burst_mode_damages_contiguous_run() {
        let mut inj = FaultInjector::with_mode(0.0, 1.0, CorruptionMode::Burst { octets: 8 }, 5);
        let orig = vec![0u8; 64];
        for _ in 0..200 {
            let mut f = orig.clone();
            assert_eq!(inj.apply(&mut f), FaultOutcome::Corrupted);
            let changed: Vec<usize> = f
                .iter()
                .zip(&orig)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            assert!(!changed.is_empty() && changed.len() <= 8, "{changed:?}");
            // Every damaged octet changes, so the run is contiguous.
            assert_eq!(
                changed.last().unwrap() - changed.first().unwrap() + 1,
                changed.len(),
                "non-contiguous damage: {changed:?}"
            );
        }
    }

    #[test]
    fn burst_mode_clamps_to_short_frames() {
        let mut inj = FaultInjector::with_mode(0.0, 1.0, CorruptionMode::Burst { octets: 100 }, 6);
        let mut f = vec![0u8; 3];
        assert_eq!(inj.apply(&mut f), FaultOutcome::Corrupted);
        assert!(f.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic]
    fn zero_length_burst_rejected() {
        FaultInjector::with_mode(0.0, 0.5, CorruptionMode::Burst { octets: 0 }, 0);
    }
}
