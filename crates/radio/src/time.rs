//! Virtual time: integer nanoseconds since simulation start.
//!
//! Wall-clock time never enters the simulation; every timestamp is one of
//! these. Nanosecond resolution keeps sub-microsecond PHY timings (0.4 µs
//! guard intervals) exact while `u64` still spans ~584 years.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to the nearest nanosecond;
    /// negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by an integer factor.
    pub const fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }

    /// Scale by a float factor (rounds; negative clamps to zero).
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

/// A point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

impl Instant {
    /// Simulation start.
    pub const ZERO: Instant = Instant(0);

    /// From nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// From microseconds since start.
    pub const fn from_us(us: u64) -> Self {
        Instant(us * 1_000)
    }

    /// From milliseconds since start.
    pub const fn from_ms(ms: u64) -> Self {
        Instant(ms * 1_000_000)
    }

    /// From whole seconds since start.
    pub const fn from_secs(s: u64) -> Self {
        Instant(s * 1_000_000_000)
    }

    /// From fractional seconds since start.
    pub fn from_secs_f64(s: f64) -> Self {
        Instant((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since start (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl core::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_ms(3).as_us(), 3_000);
        assert_eq!(Duration::from_us(5).as_nanos(), 5_000);
        assert_eq!(Instant::from_secs(1).as_us(), 1_000_000);
    }

    #[test]
    fn float_round_trip() {
        let d = Duration::from_secs_f64(1.5);
        assert_eq!(d.as_ms(), 1_500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        // Negative clamps.
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = Instant::from_ms(10) + Duration::from_ms(5);
        assert_eq!(t, Instant::from_ms(15));
        assert_eq!(t.since(Instant::from_ms(10)), Duration::from_ms(5));
        // since() saturates.
        assert_eq!(
            Instant::from_ms(1).since(Instant::from_ms(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn duration_saturating() {
        assert_eq!(
            Duration::from_ms(1).saturating_sub(Duration::from_ms(2)),
            Duration::ZERO
        );
        assert_eq!(
            Duration::from_ms(5) - Duration::from_ms(2),
            Duration::from_ms(3)
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12 ns");
        assert_eq!(Duration::from_us(12).to_string(), "12.000 µs");
        assert_eq!(Duration::from_ms(12).to_string(), "12.000 ms");
        assert_eq!(Duration::from_secs(12).to_string(), "12.000 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1u64, 2, 3].iter().map(|&m| Duration::from_ms(m)).sum();
        assert_eq!(total, Duration::from_ms(6));
    }

    #[test]
    fn mul_scaling() {
        assert_eq!(Duration::from_us(10).mul(3), Duration::from_us(30));
        assert_eq!(Duration::from_secs(1).mul_f64(0.25), Duration::from_ms(250));
    }
}
