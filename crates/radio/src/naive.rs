//! Reference broadcast medium: the original, unoptimized implementation
//! retained verbatim for differential testing.
//!
//! [`NaiveMedium`] rescans the full transmission log on every carrier
//! sense and collision check, recomputes path loss and shadowing per
//! (transmission, receiver) query, and retains every payload byte
//! forever. It is deliberately simple enough to audit by eye.
//!
//! The optimized [`crate::Medium`] must produce exactly the same
//! [`RxFrame`] sequence per listener and the same `is_busy` answers for
//! any topology and traffic pattern; `tests/props.rs` enforces this over
//! randomized inputs, and the benchmark suite measures the gap between
//! the two.

use std::sync::Arc;

use crate::channel::ChannelModel;
use crate::medium::{
    RadioConfig, RadioId, RxFrame, TxParams, CAPTURE_MARGIN_DB, SHADOW_CLAMP_SIGMA,
};
use crate::per::packet_error_rate;
use crate::time::Instant;

#[derive(Debug, Clone)]
struct Transmission {
    from: RadioId,
    start: Instant,
    end: Instant,
    channel: u8,
    params: TxParams,
    bytes: Arc<[u8]>,
}

/// The original O(radios × transmissions) medium, API-compatible with
/// the optimized [`crate::Medium`] for the operations the differential
/// tests exercise.
#[derive(Debug)]
pub struct NaiveMedium {
    model: ChannelModel,
    seed: u64,
    radios: Vec<RadioConfig>,
    txs: Vec<Transmission>,
    /// Per-receiver cursor into `txs`: everything before it has been
    /// offered to that receiver already.
    cursors: Vec<usize>,
    last_start: Instant,
}

impl NaiveMedium {
    /// A medium with the given propagation model and loss seed.
    pub fn new(model: ChannelModel, seed: u64) -> Self {
        NaiveMedium {
            model,
            seed,
            radios: Vec::new(),
            txs: Vec::new(),
            cursors: Vec::new(),
            last_start: Instant::ZERO,
        }
    }

    /// Attach a radio; returns its id.
    pub fn attach(&mut self, cfg: RadioConfig) -> RadioId {
        self.radios.push(cfg);
        self.cursors.push(0);
        RadioId(self.radios.len() as u32 - 1)
    }

    /// Transmit `bytes` from `from` starting at `at`; returns the
    /// end-of-frame instant. Same time-order contract as
    /// [`crate::Medium::transmit`].
    pub fn transmit(
        &mut self,
        from: RadioId,
        at: Instant,
        params: TxParams,
        bytes: Vec<u8>,
    ) -> Instant {
        assert!(
            at >= self.last_start,
            "transmissions must be issued in time order ({at} < {})",
            self.last_start
        );
        self.last_start = at;
        let end = at + params.airtime;
        let channel = self.radios[from.0 as usize].channel;
        self.txs.push(Transmission {
            from,
            start: at,
            end,
            channel,
            params,
            bytes: bytes.into(),
        });
        end
    }

    /// Whether `listener` would sense the medium busy at `at` — full
    /// scan of the transmission log.
    pub fn is_busy(&self, listener: RadioId, at: Instant) -> bool {
        let cfg = self.radios[listener.0 as usize];
        self.txs.iter().rev().any(|tx| {
            tx.start <= at
                && at < tx.end
                && tx.channel == cfg.channel
                && tx.from != listener
                && self.rx_power(tx, listener) >= cfg.sensitivity_dbm
        })
    }

    /// Collect every frame that finished arriving at `listener` by
    /// `up_to` — same contract as [`crate::Medium::take_inbox`].
    pub fn take_inbox(&mut self, listener: RadioId, up_to: Instant) -> Vec<RxFrame> {
        let cfg = self.radios[listener.0 as usize];
        let mut out = Vec::new();
        let mut cursor = self.cursors[listener.0 as usize];
        while cursor < self.txs.len() {
            let tx = &self.txs[cursor];
            if tx.end > up_to {
                break;
            }
            if let Some(frame) = self.receive_one(cursor, listener, cfg) {
                out.push(frame);
            }
            cursor += 1;
        }
        self.cursors[listener.0 as usize] = cursor;
        out
    }

    fn rx_power(&self, tx: &Transmission, listener: RadioId) -> f64 {
        let a = self.radios[tx.from.0 as usize].position_m;
        let b = self.radios[listener.0 as usize].position_m;
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        self.model.rx_power_dbm(tx.params.power_dbm, d) + self.shadow_db(tx.from, listener)
    }

    fn shadow_db(&self, a: RadioId, b: RadioId) -> f64 {
        let sigma = self.model.shadowing_sigma_db;
        if sigma == 0.0 {
            return 0.0;
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let u1 = Self::unit_hash(self.seed ^ 0x5AAD_0001, lo, hi);
        let u2 = Self::unit_hash(self.seed ^ 0x5AAD_0002, lo, hi);
        // Box–Muller for a standard normal from two uniforms, clamped
        // identically to [`crate::Medium::shadow_db`].
        let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        sigma * z.clamp(-SHADOW_CLAMP_SIGMA, SHADOW_CLAMP_SIGMA)
    }

    fn unit_hash(seed: u64, a: u32, b: u32) -> f64 {
        let mut x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a as u64 + 1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(b as u64 + 1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn receive_one(&self, tx_idx: usize, listener: RadioId, cfg: RadioConfig) -> Option<RxFrame> {
        let tx = &self.txs[tx_idx];
        if tx.from == listener || tx.channel != cfg.channel {
            return None;
        }
        let rssi = self.rx_power(tx, listener);
        if rssi < cfg.sensitivity_dbm {
            return None;
        }
        // Collision check over the ENTIRE log — the quadratic scan the
        // optimized medium windows away.
        for (j, other) in self.txs.iter().enumerate() {
            if j == tx_idx || other.channel != tx.channel || other.from == listener {
                continue;
            }
            let overlaps = other.start < tx.end && tx.start < other.end;
            if !overlaps {
                continue;
            }
            let interferer = self.rx_power(other, listener);
            if interferer >= cfg.sensitivity_dbm && rssi < interferer + CAPTURE_MARGIN_DB {
                return None;
            }
        }
        let snr = rssi - self.model.effective_noise_dbm();
        let per = packet_error_rate(snr, tx.params.min_snr_db, tx.bytes.len());
        if self.loss_roll(tx_idx, listener) < per {
            return None;
        }
        Some(RxFrame {
            at: tx.end,
            from: tx.from,
            rssi_dbm: rssi,
            snr_db: snr,
            bytes: tx.bytes.clone(),
        })
    }

    fn loss_roll(&self, tx_idx: usize, listener: RadioId) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tx_idx as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(listener.0 as u64 + 1);
        // SplitMix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}
