//! The broadcast medium: radios at positions, transmissions with
//! airtime, per-receiver SNR/PER, collisions with physical capture.
//!
//! The medium is PHY-agnostic: callers pass each transmission's airtime
//! and decode threshold (computed from `wile_dot11::phy` one layer up),
//! so this crate does not depend on the 802.11 crate and can carry BLE
//! advertising PDUs with identical semantics.
//!
//! # Determinism
//!
//! Loss decisions are derived from a per-(transmission, receiver) hash of
//! the medium's seed, so results do not depend on the order receivers
//! poll their inboxes.
//!
//! # Performance
//!
//! The medium is a hot path for fleet-scale campaigns, so it indexes
//! its state instead of rescanning it:
//!
//! * live transmissions are indexed **per channel**, and both carrier
//!   sense ([`Medium::is_busy`]) and the collision scan inside
//!   [`Medium::take_inbox`] binary-search a start-time window bounded
//!   by the longest airtime seen, instead of walking the whole log;
//! * transmissions are additionally indexed **per spatial cell** of the
//!   sender, and inbox drains only visit cells within the listener's
//!   sensitivity horizon — in a metro-scale hall a gateway examines the
//!   few thousand beacons transmitted near it, not the whole city's
//!   (see "Spatial sharding" below);
//! * pairwise received power (path loss + static shadowing) is
//!   **memoized per (tx, rx) link** — for static topologies every
//!   `log10`/`sqrt`/Box–Muller evaluation happens once — and
//!   out-of-horizon pairs are distance-culled *before* touching the
//!   cache, so the cache holds O(audible links), not O(radios²);
//! * frame bytes are stored once and shared (`Arc<[u8]>`): delivering a
//!   beacon to N gateways bumps a refcount N times instead of copying
//!   the payload N times;
//! * with [`Medium::retire_consumed`] enabled, transmissions every
//!   attached cursor has passed are **retired**, so long campaigns run
//!   in memory bounded by the in-flight window rather than the full
//!   history.
//!
//! # Spatial sharding
//!
//! Shadowing deviates are clamped to ±[`SHADOW_CLAMP_SIGMA`] standard
//! deviations (the implicit bound of the old hash-fed Box–Muller was
//! ±7.4σ — beyond physical plausibility and uselessly loose). That makes
//! the strongest possible arrival at distance `d` a closed form, and
//! inverting it gives the **sensitivity horizon**: the distance beyond
//! which a transmission at power `p` cannot reach a listener with
//! sensitivity `s` even with maximum shadowing gain. Radios live in a
//! grid of [`CELL_M`]-metre cells keyed by position; a drain visits only
//! cells within the horizon of the strongest power ever transmitted.
//! Every skipped transmission is *provably* below the listener's
//! sensitivity, so the cull is behaviour-preserving, not approximate.
//!
//! All of this is behaviour-preserving: the [`RxFrame`] sequence each
//! listener observes is byte-identical to the retained naive reference
//! implementation ([`crate::naive::NaiveMedium`]), which the property
//! tests in `tests/props.rs` enforce over random topologies.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::channel::ChannelModel;
use crate::per::packet_error_rate;
use crate::stats::{MediumCounters, MediumStats};
use crate::time::{Duration, Instant};

/// Identifies one attached radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RadioId(pub u32);

/// Static configuration of an attached radio.
#[derive(Debug, Clone, Copy)]
pub struct RadioConfig {
    /// Position in metres (planar).
    pub position_m: (f64, f64),
    /// Channel number the radio is tuned to (2.4 GHz numbering, or the
    /// BLE advertising channel index — only equality matters).
    pub channel: u8,
    /// Below this received power (dBm) the radio does not even detect
    /// the frame (no interference contribution is modelled below it
    /// either — a simplification).
    pub sensitivity_dbm: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            position_m: (0.0, 0.0),
            channel: 6,
            sensitivity_dbm: -92.0,
        }
    }
}

/// Parameters of one transmission.
#[derive(Debug, Clone, Copy)]
pub struct TxParams {
    /// On-air duration of the PPDU.
    pub airtime: Duration,
    /// Transmit power, dBm.
    pub power_dbm: f64,
    /// SNR (dB) at which this frame's modulation decodes with 50 % PER
    /// for a 1000-byte frame (see `wile_dot11::phy::PhyRate::min_snr_db`).
    pub min_snr_db: f64,
}

/// A frame as it arrived at one receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct RxFrame {
    /// Delivery time (end of the PPDU).
    pub at: Instant,
    /// The transmitting radio.
    pub from: RadioId,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio at this receiver, dB.
    pub snr_db: f64,
    /// The frame bytes, shared with the medium's transmission log —
    /// delivery to N receivers is N refcount bumps, not N copies. Fault
    /// injection that corrupts a frame copy-on-writes its own copy
    /// ([`crate::plan::FaultTimeline::apply_shared`]).
    pub bytes: Arc<[u8]>,
}

#[derive(Debug, Clone)]
struct Transmission {
    from: RadioId,
    start: Instant,
    end: Instant,
    channel: u8,
    params: TxParams,
    bytes: Arc<[u8]>,
}

/// How much stronger (dB) the wanted signal must be than an overlapping
/// interferer for the receiver to capture it anyway.
pub const CAPTURE_MARGIN_DB: f64 = 10.0;

/// Log-normal shadowing deviates are clamped to this many standard
/// deviations on either side. Bounding the tail is what makes the
/// sensitivity horizon (and therefore the spatial cull) a closed form;
/// ±4σ keeps 99.994 % of the distribution and caps the gain a link can
/// shadow *up* by (e.g. +24 dB at σ = 6).
pub const SHADOW_CLAMP_SIGMA: f64 = 4.0;

/// Edge length (metres) of the spatial grid cells senders are indexed
/// by. Small enough that a metro hall spans many cells, large enough
/// that short-horizon fleets only ever merge a handful of neighbour
/// lists per drain.
pub const CELL_M: f64 = 32.0;

/// The grid cell containing a position.
fn cell_of(pos: (f64, f64)) -> (i32, i32) {
    (
        (pos.0 / CELL_M).floor() as i32,
        (pos.1 / CELL_M).floor() as i32,
    )
}

/// Memoized per-link received power, stored sparsely: fleets exercise
/// O(active links) pairs — a 10k-device star topology touches 10k
/// links, not the 10⁸ a dense matrix would allocate (and re-zero on
/// every attach, making setup O(radios³) overall). Positions are fixed
/// at attach, so entries never go stale. Each entry is keyed by the
/// transmit power it was computed for (radios almost always transmit
/// at one power, so a single slot per link suffices).
#[derive(Debug, Clone, Default)]
struct LinkCache {
    /// `(from, to)` → (tx power bits, rx power dBm).
    slots: HashMap<(u32, u32), (u64, f64)>,
}

/// The shared broadcast medium.
///
/// ```
/// use wile_radio::{Medium, RadioConfig};
/// use wile_radio::medium::TxParams;
/// use wile_radio::{Duration, Instant};
///
/// let mut m = Medium::new(Default::default(), 42);
/// let sensor = m.attach(RadioConfig { position_m: (0.0, 0.0), ..Default::default() });
/// let phone = m.attach(RadioConfig { position_m: (3.0, 0.0), ..Default::default() });
///
/// m.transmit(sensor, Instant::from_ms(10), TxParams {
///     airtime: Duration::from_us(50), power_dbm: 0.0, min_snr_db: 25.0,
/// }, b"beacon".to_vec());
///
/// let rx = m.take_inbox(phone, Instant::from_secs(1));
/// assert_eq!(rx.len(), 1);
/// assert_eq!(&rx[0].bytes[..], b"beacon");
/// ```
#[derive(Debug, Clone)]
pub struct Medium {
    model: ChannelModel,
    seed: u64,
    radios: Vec<RadioConfig>,
    /// Retained transmissions; absolute index = `base` + vec position.
    txs: Vec<Transmission>,
    /// Absolute index of `txs[0]` (count of retired transmissions).
    base: u64,
    /// Per-receiver cursor (absolute): everything before it has been
    /// offered to that receiver already.
    cursors: Vec<u64>,
    /// Per-receiver high-water mark of `up_to` deadlines the receiver
    /// has drained (or released) its inbox to.
    drained_to: Vec<Instant>,
    /// Absolute indices of transmissions per channel, start-ordered.
    by_channel: BTreeMap<u8, Vec<u64>>,
    /// Absolute indices per (channel, sender cell), start-ordered — the
    /// spatial shard index inbox drains merge from.
    cell_txs: HashMap<(u8, i32, i32), Vec<u64>>,
    /// Longest airtime ever transmitted — bounds the start-time window
    /// a transmission can overlap.
    max_airtime: Duration,
    /// Strongest power ever transmitted — bounds the horizon any
    /// retained transmission can reach.
    max_power_dbm: f64,
    cache: RefCell<LinkCache>,
    /// Memoized sensitivity horizons keyed by (power bits, sensitivity
    /// bits); fleets use a handful of distinct combinations.
    horizons: RefCell<HashMap<(u64, u64), f64>>,
    /// Retire fully-consumed history (see [`Medium::retire_consumed`]).
    bounded: bool,
    last_start: Instant,
    /// Total frames ever transmitted (for stats).
    tx_count: u64,
    /// Cursor advances since the last retirement scan — amortizes the
    /// O(radios) min-cursor pass to O(1) per drain on large fleets.
    retire_skip: u32,
    /// Scratch for merging neighbour-cell index lists without a per-poll
    /// allocation.
    inbox_scratch: Vec<u64>,
    /// Observational tallies (see [`Medium::stats`]).
    counters: MediumCounters,
}

impl Medium {
    /// A medium with the given propagation model and loss seed.
    pub fn new(model: ChannelModel, seed: u64) -> Self {
        Medium {
            model,
            seed,
            radios: Vec::new(),
            txs: Vec::new(),
            base: 0,
            cursors: Vec::new(),
            drained_to: Vec::new(),
            by_channel: BTreeMap::new(),
            cell_txs: HashMap::new(),
            max_airtime: Duration::ZERO,
            max_power_dbm: f64::NEG_INFINITY,
            cache: RefCell::new(LinkCache::default()),
            horizons: RefCell::new(HashMap::new()),
            bounded: false,
            last_start: Instant::ZERO,
            tx_count: 0,
            retire_skip: 0,
            inbox_scratch: Vec::new(),
            counters: MediumCounters::default(),
        }
    }

    /// Attach a radio; returns its id.
    pub fn attach(&mut self, cfg: RadioConfig) -> RadioId {
        self.radios.push(cfg);
        self.cursors.push(self.base);
        self.drained_to.push(Instant::ZERO);
        RadioId(self.radios.len() as u32 - 1)
    }

    /// The propagation model in use.
    pub fn model(&self) -> &ChannelModel {
        &self.model
    }

    /// Number of attached radios.
    pub fn radio_count(&self) -> usize {
        self.radios.len()
    }

    /// Total transmissions offered to the medium so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Snapshot of the medium's observational counters: delivery and
    /// loss breakdown, link-cache effectiveness, retained-log depth.
    pub fn stats(&self) -> MediumStats {
        self.counters.snapshot(self.tx_count)
    }

    /// Bound the medium's memory: retire transmissions once every
    /// attached cursor has passed them and no live query can still see
    /// them. Off by default (the full history is retained for
    /// [`Medium::transmissions`] consumers such as pcap export).
    ///
    /// In bounded mode two contracts apply, both natural for
    /// time-ordered event loops:
    ///
    /// * [`Medium::transmissions`] yields only the retained suffix;
    /// * a receiver must not query [`Medium::is_busy`] or
    ///   [`Medium::take_inbox`] for instants earlier than deadlines it
    ///   has already drained or released to.
    ///
    /// Listeners that never read their inbox (transmit-only devices)
    /// should periodically call [`Medium::release`] so history behind
    /// them can be reclaimed.
    pub fn retire_consumed(&mut self, on: bool) {
        self.bounded = on;
    }

    /// Transmissions currently retained in memory (≤ [`Medium::tx_count`]
    /// once retirement is enabled).
    pub fn live_tx_count(&self) -> usize {
        self.txs.len()
    }

    /// Transmissions retired so far (always 0 unless
    /// [`Medium::retire_consumed`] is enabled).
    pub fn retired_tx_count(&self) -> u64 {
        self.base
    }

    fn tx(&self, abs: u64) -> &Transmission {
        &self.txs[(abs - self.base) as usize]
    }

    /// Transmit `bytes` from `from` starting at `at`.
    ///
    /// Transmissions must be issued in non-decreasing start-time order
    /// (the event queue guarantees this in multi-device scenarios);
    /// issuing one earlier than the previous start panics, because
    /// collision resolution would silently miss it.
    ///
    /// Returns the end-of-frame instant.
    pub fn transmit(
        &mut self,
        from: RadioId,
        at: Instant,
        params: TxParams,
        bytes: Vec<u8>,
    ) -> Instant {
        assert!(
            at >= self.last_start,
            "transmissions must be issued in time order ({at} < {})",
            self.last_start
        );
        self.last_start = at;
        let end = at + params.airtime;
        if params.airtime > self.max_airtime {
            self.max_airtime = params.airtime;
        }
        if params.power_dbm > self.max_power_dbm {
            self.max_power_dbm = params.power_dbm;
        }
        let cfg = self.radios[from.0 as usize];
        let channel = cfg.channel;
        let abs = self.base + self.txs.len() as u64;
        self.by_channel.entry(channel).or_default().push(abs);
        let (ci, cj) = cell_of(cfg.position_m);
        self.cell_txs
            .entry((channel, ci, cj))
            .or_default()
            .push(abs);
        self.txs.push(Transmission {
            from,
            start: at,
            end,
            channel,
            params,
            bytes: bytes.into(),
        });
        self.tx_count += 1;
        self.counters.high_water(self.txs.len() as u64);
        end
    }

    /// Absolute-index window `[lo, hi)` of channel-list entries whose
    /// start lies in `(before - max_airtime, deadline]` — the only
    /// entries that can overlap an instant ≥ `before`. `idxs` is
    /// start-ordered because transmissions are issued in time order.
    fn channel_window(&self, idxs: &[u64], before: Instant, deadline: Instant) -> (usize, usize) {
        // A transmission with start ≤ before − max_airtime has
        // end ≤ before, so it cannot reach `before` or beyond. When the
        // subtraction would go below zero no lower cull is possible.
        let lo = match before.as_nanos().checked_sub(self.max_airtime.as_nanos()) {
            Some(floor_ns) => idxs.partition_point(|&i| self.tx(i).start.as_nanos() <= floor_ns),
            None => 0,
        };
        let hi = idxs.partition_point(|&i| self.tx(i).start <= deadline);
        (lo, hi)
    }

    /// The distance (metres) beyond which a transmission at `power_dbm`
    /// cannot arrive at or above `sensitivity_dbm` even with maximum
    /// (+[`SHADOW_CLAMP_SIGMA`]·σ) shadowing gain. Infinite when the
    /// model cannot bound it (non-positive path-loss exponent).
    fn horizon_m(&self, power_dbm: f64, sensitivity_dbm: f64) -> f64 {
        let key = (power_dbm.to_bits(), sensitivity_dbm.to_bits());
        if let Some(&h) = self.horizons.borrow().get(&key) {
            return h;
        }
        let budget = power_dbm + SHADOW_CLAMP_SIGMA * self.model.shadowing_sigma_db
            - sensitivity_dbm
            - self.model.pl0_db;
        let h = if self.model.exponent > 0.0 && budget.is_finite() {
            // A hair of slack absorbs the powf↔log10 round-trip error so
            // the cull stays strictly conservative, plus the 0.1 m
            // path-loss floor.
            (10f64.powf(budget / (10.0 * self.model.exponent)) * 1.000_001).max(0.2)
        } else {
            f64::INFINITY
        };
        self.horizons.borrow_mut().insert(key, h);
        h
    }

    /// True when the `from` → `to` link is provably below
    /// `sensitivity_dbm` for a transmission at `power_dbm`: the pair is
    /// farther apart than the sensitivity horizon. Used to skip the
    /// received-power path (and its cache insert) for pairs that could
    /// never be heard; `false` on any non-finite geometry, which safely
    /// falls through to the exact computation.
    fn beyond_horizon(&self, from: RadioId, to: RadioId, power_dbm: f64, sens_dbm: f64) -> bool {
        let h = self.horizon_m(power_dbm, sens_dbm);
        if !h.is_finite() {
            return false;
        }
        let a = self.radios[from.0 as usize].position_m;
        let b = self.radios[to.0 as usize].position_m;
        let d2 = (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2);
        d2 > h * h
    }

    /// Whether `listener` would sense the medium busy at `at` (any
    /// in-flight transmission on its channel above its sensitivity).
    ///
    /// Cost is O(log n + k) in the number of retained transmissions on
    /// the listener's channel, where k is the overlap window — the
    /// device-side carrier-sense ramp calls this on every copy.
    pub fn is_busy(&self, listener: RadioId, at: Instant) -> bool {
        let cfg = self.radios[listener.0 as usize];
        let Some(idxs) = self.by_channel.get(&cfg.channel) else {
            return false;
        };
        // Active at `at` ⇔ start ≤ at < end; start-sorted, so the
        // candidates sit in the (at − max_airtime, at] start window.
        let (lo, hi) = self.channel_window(idxs, at, at);
        idxs[lo..hi].iter().any(|&i| {
            let tx = self.tx(i);
            at < tx.end
                && tx.from != listener
                && !self.beyond_horizon(tx.from, listener, tx.params.power_dbm, cfg.sensitivity_dbm)
                && self.rx_power(tx, listener) >= cfg.sensitivity_dbm
        })
    }

    /// The absolute index where a cursor walk to `up_to` stops: the
    /// first transmission at or after `cursor` whose end is after
    /// `up_to` (everything before it has been consumed). Binary search
    /// on starts plus a scan bounded by `max_airtime`: a transmission
    /// starting at or before `up_to − max_airtime` has necessarily
    /// ended, and one starting after `up_to` necessarily has not.
    fn inbox_stop(&self, cursor: u64, up_to: Instant) -> u64 {
        let hi = self.base + self.txs.partition_point(|t| t.start <= up_to) as u64;
        let lo = match up_to.as_nanos().checked_sub(self.max_airtime.as_nanos()) {
            Some(floor_ns) => {
                self.base + self.txs.partition_point(|t| t.start.as_nanos() <= floor_ns) as u64
            }
            None => self.base,
        };
        let mut i = lo.max(cursor);
        while i < hi {
            if self.tx(i).end > up_to {
                return i;
            }
            i += 1;
        }
        hi
    }

    /// Collect every frame that finished arriving at `listener` by
    /// `up_to`, applying SNR-based loss and collision capture. Frames are
    /// returned once; later calls continue where this one left off.
    ///
    /// Call this only after all transmissions starting before `up_to`
    /// have been issued, or late transmissions may miss collisions.
    pub fn take_inbox(&mut self, listener: RadioId, up_to: Instant) -> Vec<RxFrame> {
        let mut out = Vec::new();
        self.take_inbox_into(listener, up_to, &mut out);
        out
    }

    /// [`Medium::take_inbox`], appending into a caller-owned buffer —
    /// the allocation-free form for pollers that drain every few
    /// seconds for hours.
    ///
    /// The walk is spatially sharded: only transmissions from cells
    /// within the sensitivity horizon are merged (in issue order, so
    /// the frame sequence is identical to the naive full walk — every
    /// skipped transmission is provably below sensitivity), and the
    /// cursor advances to exactly where the full walk would stop.
    pub fn take_inbox_into(&mut self, listener: RadioId, up_to: Instant, out: &mut Vec<RxFrame>) {
        let cfg = self.radios[listener.0 as usize];
        let cursor = self.cursors[listener.0 as usize];
        let end = self.base + self.txs.len() as u64;
        if cursor < end {
            let stop = self.inbox_stop(cursor, up_to);
            if stop > cursor {
                let mut cand = std::mem::take(&mut self.inbox_scratch);
                cand.clear();
                self.collect_audible(cfg, cursor, stop, &mut cand);
                // Each transmission lives in exactly one cell list, so
                // the sorted union is duplicate-free and issue-ordered.
                cand.sort_unstable();
                for &i in &cand {
                    if self.tx(i).from != listener {
                        if let Some(frame) = self.receive_one(i, listener, cfg) {
                            out.push(frame);
                        }
                    }
                }
                self.inbox_scratch = cand;
            }
            self.cursors[listener.0 as usize] = stop;
        }
        if up_to > self.drained_to[listener.0 as usize] {
            self.drained_to[listener.0 as usize] = up_to;
        }
        self.maybe_retire(false);
    }

    /// Gather the `[cursor, stop)` segments of every cell list on the
    /// listener's channel within its sensitivity horizon. Cells outside
    /// the square of radius `⌊h/CELL⌋ + 1` are at least `h` metres away
    /// at their nearest corner, so nothing in them can be heard.
    fn collect_audible(&self, cfg: RadioConfig, cursor: u64, stop: u64, cand: &mut Vec<u64>) {
        let mut push_list = |idxs: &[u64]| {
            let lo = idxs.partition_point(|&i| i < cursor);
            let hi = idxs.partition_point(|&i| i < stop);
            cand.extend_from_slice(&idxs[lo..hi]);
        };
        let h = self.horizon_m(self.max_power_dbm, cfg.sensitivity_dbm);
        let r = if h.is_finite() {
            (h / CELL_M).floor() as i64 + 1
        } else {
            i64::MAX
        };
        let (ci, cj) = cell_of(cfg.position_m);
        let span = r.checked_mul(2).and_then(|d| d.checked_add(1));
        let enumerable = span
            .and_then(|s| s.checked_mul(s))
            .is_some_and(|n| n <= self.cell_txs.len() as i64);
        if enumerable {
            let r = r as i32;
            for di in -r..=r {
                for dj in -r..=r {
                    let key = (cfg.channel, ci.wrapping_add(di), cj.wrapping_add(dj));
                    if let Some(idxs) = self.cell_txs.get(&key) {
                        push_list(idxs);
                    }
                }
            }
        } else {
            // Fewer occupied cells than the neighbourhood has slots:
            // filter the occupied set instead of enumerating the square.
            for (&(ch, i, j), idxs) in &self.cell_txs {
                if ch == cfg.channel
                    && (i as i64 - ci as i64).abs() <= r
                    && (j as i64 - cj as i64).abs() <= r
                {
                    push_list(idxs);
                }
            }
        }
    }

    /// Declare that `listener` will never ask for frames that finished
    /// by `up_to`: advances its cursor without modelling reception, so
    /// consumed history behind it can be retired in bounded mode.
    ///
    /// Loss decisions are stateless per (transmission, receiver), so
    /// skipping them here cannot disturb any other receiver's stream.
    pub fn release(&mut self, listener: RadioId, up_to: Instant) {
        let cursor = self.cursors[listener.0 as usize];
        if cursor < self.base + self.txs.len() as u64 {
            self.cursors[listener.0 as usize] = self.inbox_stop(cursor, up_to);
        }
        if up_to > self.drained_to[listener.0 as usize] {
            self.drained_to[listener.0 as usize] = up_to;
        }
        self.maybe_retire(false);
    }

    /// [`Medium::release`] for every attached radio at once, in one
    /// pass: O(retained + radios) instead of radios × (scan +
    /// retirement check). This is what makes 10k-radio fleets viable —
    /// a gateway that polls every few seconds would otherwise spend
    /// O(radios²) per poll advancing transmit-only cursors one radio at
    /// a time.
    ///
    /// Receivers that still want frames ending by `up_to` must drain
    /// ([`Medium::take_inbox`]) *before* this is called; afterwards that
    /// history is considered consumed for everyone.
    pub fn release_all(&mut self, up_to: Instant) {
        // The stop index is the same for every radio: the first retained
        // transmission still in flight at `up_to`. Computing it once
        // replaces the per-radio scan.
        let boundary = self.inbox_stop(self.base, up_to);
        for r in 0..self.radios.len() {
            if self.cursors[r] < boundary {
                self.cursors[r] = boundary;
            }
            if up_to > self.drained_to[r] {
                self.drained_to[r] = up_to;
            }
        }
        self.maybe_retire(true);
    }

    /// Drop the longest prefix of transmissions that (a) every cursor
    /// has passed, (b) every receiver has drained past in time, and
    /// (c) cannot overlap any unconsumed or future transmission — so
    /// neither delivery, collision modelling, nor in-contract carrier
    /// sense can ever observe the difference.
    ///
    /// The O(radios) min-cursor/min-drained pass is amortized: single
    /// cursor advances ([`Medium::take_inbox`], [`Medium::release`])
    /// only trigger it once per `radios` calls, while
    /// [`Medium::release_all`] — the only operation that moves *every*
    /// cursor — forces it. A million-device fleet therefore pays the
    /// scan once per poll round, not once per drain.
    fn maybe_retire(&mut self, forced: bool) {
        if !self.bounded || self.txs.is_empty() {
            return;
        }
        self.retire_skip += 1;
        if !forced && (self.retire_skip as usize) < self.radios.len() {
            return;
        }
        self.retire_skip = 0;
        let Some(&min_cursor) = self.cursors.iter().min() else {
            return;
        };
        let Some(&min_drained) = self.drained_to.iter().min() else {
            return;
        };
        // Anything ending after `horizon` may still interact with a
        // pending frame, a future transmission (start ≥ last_start), or
        // an allowed is_busy query (at ≥ own drained_to ≥ min_drained).
        let mut horizon = min_drained.min(self.last_start);
        if min_cursor < self.base + self.txs.len() as u64 {
            horizon = horizon.min(self.tx(min_cursor).start);
        }
        let max_pos = (min_cursor - self.base) as usize;
        let mut k = 0usize;
        while k < max_pos && self.txs[k].end <= horizon {
            k += 1;
        }
        // Amortize the prefix drain: compact only once a meaningful
        // chunk is reclaimable.
        if k < 64 && k * 2 < self.txs.len() {
            return;
        }
        let new_base = self.base + k as u64;
        self.txs.drain(..k);
        self.base = new_base;
        for idxs in self.by_channel.values_mut() {
            let p = idxs.partition_point(|&i| i < new_base);
            idxs.drain(..p);
        }
        self.cell_txs.retain(|_, idxs| {
            let p = idxs.partition_point(|&i| i < new_base);
            idxs.drain(..p);
            !idxs.is_empty()
        });
    }

    /// Iterate over every *retained* transmission (for pcap export and
    /// statistics) — the full history unless
    /// [`Medium::retire_consumed`] is enabled. Yields
    /// `(from, start, end, bytes)`.
    pub fn transmissions(&self) -> impl Iterator<Item = (RadioId, Instant, Instant, &[u8])> + '_ {
        self.txs
            .iter()
            .map(|t| (t.from, t.start, t.end, &t.bytes[..]))
    }

    /// Received power for `tx` at `listener`, memoized per link.
    ///
    /// The cache stores the *result of the exact original computation*
    /// keyed by the transmit power's bit pattern, so memoized and fresh
    /// values are bit-identical.
    fn rx_power(&self, tx: &Transmission, listener: RadioId) -> f64 {
        let key = (tx.from.0, listener.0);
        let bits = tx.params.power_dbm.to_bits();
        if let Some(&(power, value)) = self.cache.borrow().slots.get(&key) {
            if power == bits {
                MediumCounters::bump(&self.counters.cache_hits);
                return value;
            }
        }
        MediumCounters::bump(&self.counters.cache_misses);
        let a = self.radios[tx.from.0 as usize].position_m;
        let b = self.radios[listener.0 as usize].position_m;
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let value =
            self.model.rx_power_dbm(tx.params.power_dbm, d) + self.shadow_db(tx.from, listener);
        self.cache.borrow_mut().slots.insert(key, (bits, value));
        value
    }

    /// Static log-normal shadowing for a link: symmetric, deterministic
    /// in (seed, node pair), zero when the model's sigma is zero. This
    /// is classic block shadowing — obstacles do not move during a run.
    /// Deviates are clamped to ±[`SHADOW_CLAMP_SIGMA`]σ (see the module
    /// docs on spatial sharding).
    fn shadow_db(&self, a: RadioId, b: RadioId) -> f64 {
        let sigma = self.model.shadowing_sigma_db;
        if sigma == 0.0 {
            return 0.0;
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let u1 = Self::unit_hash(self.seed ^ 0x5AAD_0001, lo, hi);
        let u2 = Self::unit_hash(self.seed ^ 0x5AAD_0002, lo, hi);
        // Box–Muller for a standard normal from two uniforms.
        let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        sigma * z.clamp(-SHADOW_CLAMP_SIGMA, SHADOW_CLAMP_SIGMA)
    }

    fn unit_hash(seed: u64, a: u32, b: u32) -> f64 {
        let mut x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a as u64 + 1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(b as u64 + 1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn receive_one(&self, tx_abs: u64, listener: RadioId, cfg: RadioConfig) -> Option<RxFrame> {
        let tx = self.tx(tx_abs);
        // The horizon precheck culls on distance alone — no cache
        // insert — and only where reception is provably impossible.
        if self.beyond_horizon(tx.from, listener, tx.params.power_dbm, cfg.sensitivity_dbm) {
            MediumCounters::bump(&self.counters.culled_sensitivity);
            return None;
        }
        let rssi = self.rx_power(tx, listener);
        if rssi < cfg.sensitivity_dbm {
            MediumCounters::bump(&self.counters.culled_sensitivity);
            return None;
        }
        // Collision check: any other transmission overlapping in time on
        // the same channel, heard above sensitivity, within the capture
        // margin, destroys this frame at this receiver. Overlap needs
        // other.end > tx.start, so only starts after tx.start −
        // max_airtime qualify (a culled entry has end ≤ tx.start).
        let idxs = &self.by_channel[&tx.channel];
        let (lo, hi) = self.channel_window(idxs, tx.start, tx.end);
        for &j in &idxs[lo..hi] {
            if j == tx_abs {
                continue;
            }
            let other = self.tx(j);
            if other.from == listener {
                continue;
            }
            let overlaps = other.start < tx.end && tx.start < other.end;
            if !overlaps {
                continue;
            }
            // An interferer below the listener's sensitivity is ignored
            // by the capture rule anyway, so the horizon precheck here
            // is also behaviour-preserving (and keeps metro-scale
            // interferer scans out of the link cache).
            if self.beyond_horizon(
                other.from,
                listener,
                other.params.power_dbm,
                cfg.sensitivity_dbm,
            ) {
                continue;
            }
            let interferer = self.rx_power(other, listener);
            if interferer >= cfg.sensitivity_dbm && rssi < interferer + CAPTURE_MARGIN_DB {
                MediumCounters::bump(&self.counters.collision_losses);
                return None;
            }
        }
        let snr = rssi - self.model.effective_noise_dbm();
        let per = packet_error_rate(snr, tx.params.min_snr_db, tx.bytes.len());
        if self.loss_roll(tx_abs, listener) < per {
            MediumCounters::bump(&self.counters.per_losses);
            return None;
        }
        MediumCounters::bump(&self.counters.delivered);
        Some(RxFrame {
            at: tx.end,
            from: tx.from,
            rssi_dbm: rssi,
            snr_db: snr,
            bytes: tx.bytes.clone(),
        })
    }

    /// Uniform [0,1) roll, deterministic in (seed, tx ordinal, receiver).
    /// The ordinal is the transmission's absolute issue index, so
    /// retirement never shifts the roll a frame receives.
    fn loss_roll(&self, tx_abs: u64, listener: RadioId) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tx_abs)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(listener.0 as u64 + 1);
        // SplitMix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_params() -> TxParams {
        TxParams {
            airtime: Duration::from_us(100),
            power_dbm: 0.0,
            min_snr_db: 15.0,
        }
    }

    fn two_node_medium(distance: f64) -> (Medium, RadioId, RadioId) {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            position_m: (distance, 0.0),
            ..Default::default()
        });
        (m, a, b)
    }

    #[test]
    fn close_range_delivery() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"hello".to_vec());
        let rx = m.take_inbox(b, Instant::from_secs(1));
        assert_eq!(rx.len(), 1);
        assert_eq!(&rx[0].bytes[..], b"hello");
        assert_eq!(rx[0].from, a);
        assert_eq!(rx[0].at, Instant::from_ms(1) + Duration::from_us(100));
        assert!(rx[0].snr_db > 40.0);
    }

    #[test]
    fn sender_does_not_hear_itself() {
        let (mut m, a, _b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(a, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn out_of_range_not_delivered() {
        // Default model: sensitivity -92 dBm at 0 dBm tx → ~50+ m range;
        // use 10 km to be decisively out of range.
        let (mut m, a, b) = two_node_medium(10_000.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(b, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn different_channels_do_not_mix() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            channel: 1,
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            channel: 6,
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(b, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn release_all_matches_per_radio_release() {
        // Same traffic through two bounded media; one releases radio by
        // radio, the other in one batch. Cursor/retirement state and the
        // frames a later drain returns must agree.
        let build = || {
            let mut m = Medium::new(ChannelModel::default(), 3);
            let radios: Vec<RadioId> = (0..4)
                .map(|i| {
                    m.attach(RadioConfig {
                        position_m: (i as f64, 0.0),
                        ..Default::default()
                    })
                })
                .collect();
            m.retire_consumed(true);
            for k in 0..200u64 {
                let from = radios[(k % 4) as usize];
                m.transmit(from, Instant::from_ms(k), quiet_params(), vec![k as u8]);
            }
            (m, radios)
        };
        let cut = Instant::from_ms(150);
        let (mut a, radios_a) = build();
        for &r in &radios_a {
            a.release(r, cut);
        }
        let (mut b, radios_b) = build();
        b.release_all(cut);
        assert_eq!(a.live_tx_count(), b.live_tx_count());
        assert_eq!(a.retired_tx_count(), b.retired_tx_count());
        assert!(b.retired_tx_count() > 0, "batch release enables retirement");
        for (&ra, &rb) in radios_a.iter().zip(&radios_b) {
            let fa = a.take_inbox(ra, Instant::from_secs(1));
            let fb = b.take_inbox(rb, Instant::from_secs(1));
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn inbox_consumes_once() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert_eq!(m.take_inbox(b, Instant::from_secs(1)).len(), 1);
        assert!(m.take_inbox(b, Instant::from_secs(2)).is_empty());
    }

    #[test]
    fn inbox_respects_deadline() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(10), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(b, Instant::from_ms(5)).is_empty());
        assert_eq!(m.take_inbox(b, Instant::from_ms(11)).len(), 1);
    }

    #[test]
    fn take_inbox_into_reuses_the_buffer() {
        let (mut m, a, b) = two_node_medium(2.0);
        let mut buf = Vec::with_capacity(16);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        m.take_inbox_into(b, Instant::from_ms(5), &mut buf);
        let cap = buf.capacity();
        m.transmit(a, Instant::from_ms(10), quiet_params(), b"y".to_vec());
        m.take_inbox_into(b, Instant::from_secs(1), &mut buf);
        assert_eq!(buf.len(), 2, "appends, does not replace");
        assert_eq!(buf.capacity(), cap, "no reallocation");
        assert_eq!(&buf[0].bytes[..], b"x");
        assert_eq!(&buf[1].bytes[..], b"y");
    }

    #[test]
    fn overlapping_equal_power_transmissions_collide() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            position_m: (2.0, 0.0),
            ..Default::default()
        });
        let rx = m.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        m.transmit(a, Instant::from_us(0), quiet_params(), b"A".to_vec());
        m.transmit(b, Instant::from_us(50), quiet_params(), b"B".to_vec());
        // Receiver equidistant: neither captures.
        assert!(m.take_inbox(rx, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn capture_lets_much_stronger_frame_survive() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let near = m.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        let far = m.attach(RadioConfig {
            position_m: (40.0, 0.0),
            ..Default::default()
        });
        let rx = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        m.transmit(near, Instant::from_us(0), quiet_params(), b"N".to_vec());
        m.transmit(far, Instant::from_us(50), quiet_params(), b"F".to_vec());
        let frames = m.take_inbox(rx, Instant::from_secs(1));
        assert_eq!(frames.len(), 1);
        assert_eq!(&frames[0].bytes[..], b"N");
    }

    #[test]
    fn non_overlapping_sequential_frames_both_arrive() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_us(0), quiet_params(), b"1".to_vec());
        m.transmit(a, Instant::from_us(200), quiet_params(), b"2".to_vec());
        assert_eq!(m.take_inbox(b, Instant::from_secs(1)).len(), 2);
    }

    #[test]
    fn busy_sensing() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_us(100), quiet_params(), b"x".to_vec());
        assert!(!m.is_busy(b, Instant::from_us(50)));
        assert!(m.is_busy(b, Instant::from_us(150)));
        assert!(!m.is_busy(b, Instant::from_us(250)));
        // The sender itself is not "busy" from its own frame.
        assert!(!m.is_busy(a, Instant::from_us(150)));
    }

    #[test]
    fn busy_sensing_with_mixed_airtimes() {
        // A long frame issued before several short ones must still be
        // seen by carrier sense deep into its airtime (the windowed scan
        // must use the *maximum* airtime, not the latest).
        let (mut m, a, b) = two_node_medium(2.0);
        let long = TxParams {
            airtime: Duration::from_ms(10),
            ..quiet_params()
        };
        m.transmit(a, Instant::from_us(0), long, b"long".to_vec());
        for i in 0..20u64 {
            m.transmit(
                a,
                Instant::from_ms(1) + Duration::from_us(i * 110),
                quiet_params(),
                b"s".to_vec(),
            );
        }
        // 8 ms in: only the long frame is still on air.
        assert!(m.is_busy(b, Instant::from_ms(8)));
        assert!(!m.is_busy(b, Instant::from_ms(11)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_transmit_panics() {
        let (mut m, a, _b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(10), quiet_params(), vec![]);
        m.transmit(a, Instant::from_ms(5), quiet_params(), vec![]);
    }

    #[test]
    fn marginal_snr_loses_some_frames() {
        // Place the receiver where SNR ≈ the decode threshold: expect
        // partial loss, not all-or-nothing.
        let model = ChannelModel::default();
        let d = model.range_for_snr_m(0.0, 15.0);
        let mut m = Medium::new(model, 7);
        let a = m.attach(RadioConfig::default());
        let b = m.attach(RadioConfig {
            position_m: (d, 0.0),
            sensitivity_dbm: -110.0,
            ..Default::default()
        });
        let mut t = Instant::ZERO;
        for _ in 0..200 {
            t = m.transmit(a, t + Duration::from_ms(1), quiet_params(), vec![0u8; 1000]);
        }
        let got = m.take_inbox(b, t + Duration::from_secs(1)).len();
        assert!(got > 20 && got < 180, "got {got}/200");
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let model = ChannelModel::default();
            let d = model.range_for_snr_m(0.0, 15.0);
            let mut m = Medium::new(model, seed);
            let a = m.attach(RadioConfig::default());
            let b = m.attach(RadioConfig {
                position_m: (d, 0.0),
                sensitivity_dbm: -110.0,
                ..Default::default()
            });
            let mut t = Instant::ZERO;
            for _ in 0..50 {
                t = m.transmit(a, t + Duration::from_ms(1), quiet_params(), vec![0u8; 1000]);
            }
            m.take_inbox(b, t + Duration::from_secs(1))
                .iter()
                .map(|f| f.at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn shadowing_is_deterministic_symmetric_and_off_by_default() {
        let shadowed = ChannelModel {
            shadowing_sigma_db: 8.0,
            ..Default::default()
        };
        let mut m = Medium::new(shadowed, 5);
        let a = m.attach(RadioConfig::default());
        let b = m.attach(RadioConfig {
            position_m: (10.0, 0.0),
            ..Default::default()
        });
        let c = m.attach(RadioConfig {
            position_m: (0.0, 10.0),
            ..Default::default()
        });
        let p = quiet_params();
        m.transmit(a, Instant::from_us(0), p, b"1".to_vec());
        m.transmit(b, Instant::from_ms(1), p, b"2".to_vec());
        m.transmit(a, Instant::from_ms(2), p, b"3".to_vec());

        let at_b: Vec<f64> = m
            .take_inbox(b, Instant::from_secs(1))
            .iter()
            .map(|f| f.rssi_dbm)
            .collect();
        let at_c: Vec<f64> = m
            .take_inbox(c, Instant::from_secs(1))
            .iter()
            .map(|f| f.rssi_dbm)
            .collect();
        // Same link, same static shadow: frames 1 and 3 at B identical.
        assert_eq!(at_b.len(), 2);
        assert!((at_b[0] - at_b[1]).abs() < 1e-9);
        // B→A shadow equals A→B shadow (symmetry): the rssi C measured
        // from A differs from B's (different links, different shadows)…
        assert!(!at_c.is_empty());
        assert_ne!(at_b[0], at_c[0]);
        // …despite equal geometric distance (10 m both ways).
        let plain = Medium::new(ChannelModel::default(), 5);
        let _ = plain; // zero-sigma medium applies no shadow at all:
        let mut m0 = Medium::new(ChannelModel::default(), 5);
        let a0 = m0.attach(RadioConfig::default());
        let b0 = m0.attach(RadioConfig {
            position_m: (10.0, 0.0),
            ..Default::default()
        });
        m0.transmit(a0, Instant::from_us(0), p, b"1".to_vec());
        let rssi = m0.take_inbox(b0, Instant::from_secs(1))[0].rssi_dbm;
        let want = ChannelModel::default().rx_power_dbm(0.0, 10.0);
        assert!((rssi - want).abs() < 1e-9);
    }

    #[test]
    fn shadow_deviates_are_clamped() {
        // Sweep many links: no shadow may exceed the clamp.
        let sigma = 6.0;
        let m = Medium::new(
            ChannelModel {
                shadowing_sigma_db: sigma,
                ..Default::default()
            },
            11,
        );
        for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let s = m.shadow_db(RadioId(a), RadioId(b));
                assert!(
                    s.abs() <= SHADOW_CLAMP_SIGMA * sigma + 1e-9,
                    "shadow {s} exceeds clamp for link ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn horizon_cull_never_drops_an_audible_frame() {
        // A multi-cell spiral of senders from well inside to well
        // outside the sensitivity horizon of a −20 dBm transmission
        // (~74 m under the default model): the sharded drain must
        // deliver exactly what the naive full walk delivers, while the
        // distance cull demonstrably fires for the far senders.
        let model = ChannelModel {
            shadowing_sigma_db: 6.0,
            ..Default::default()
        };
        let mut m = Medium::new(model, 21);
        let mut naive = crate::naive::NaiveMedium::new(model, 21);
        let gw_cfg = RadioConfig {
            position_m: (500.0, 500.0),
            sensitivity_dbm: -92.0,
            ..Default::default()
        };
        let gw = m.attach(gw_cfg);
        let gw_n = naive.attach(gw_cfg);
        let p = TxParams {
            airtime: Duration::from_us(100),
            power_dbm: -20.0,
            min_snr_db: 4.0,
        };
        for i in 0..64u64 {
            let ang = i as f64 * std::f64::consts::TAU / 64.0;
            let r = 5.0 + i as f64 * 12.0;
            let cfg = RadioConfig {
                position_m: (500.0 + r * ang.cos(), 500.0 + r * ang.sin()),
                ..Default::default()
            };
            let s = m.attach(cfg);
            let s_n = naive.attach(cfg);
            m.transmit(s, Instant::from_ms(i), p, vec![i as u8]);
            naive.transmit(s_n, Instant::from_ms(i), p, vec![i as u8]);
        }
        let got = m.take_inbox(gw, Instant::from_secs(10));
        let want = naive.take_inbox(gw_n, Instant::from_secs(10));
        assert_eq!(got, want);
        assert!(!got.is_empty(), "some close senders must be audible");
        // The cull actually fired: distant spiral members were skipped
        // without ever touching the link cache.
        assert!(m.stats().culled_sensitivity > 0);
        assert!(got.len() < 64, "far senders must be below sensitivity");
    }

    #[test]
    fn tx_count_and_transmissions_iterator() {
        let (mut m, a, _b) = two_node_medium(2.0);
        m.transmit(a, Instant::ZERO, quiet_params(), b"x".to_vec());
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"y".to_vec());
        assert_eq!(m.tx_count(), 2);
        let all: Vec<_> = m.transmissions().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].3, b"y");
    }

    #[test]
    fn bounded_mode_retires_consumed_history() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.retire_consumed(true);
        let mut t = Instant::ZERO;
        for i in 0..5_000u64 {
            t = m.transmit(a, Instant::from_ms(i), quiet_params(), vec![0u8; 64]);
            if i % 100 == 99 {
                m.take_inbox(b, t);
                m.release(a, t);
            }
        }
        m.take_inbox(b, t + Duration::from_secs(1));
        m.release(a, t + Duration::from_secs(1));
        assert_eq!(m.tx_count(), 5_000);
        assert!(
            m.live_tx_count() < 300,
            "history not reclaimed: {} live",
            m.live_tx_count()
        );
        assert!(m.retired_tx_count() > 4_000);
    }

    #[test]
    fn bounded_mode_is_behaviour_identical() {
        // Same workload, bounded vs unbounded: identical delivery, and
        // identical loss pattern (ordinal-keyed rolls survive
        // retirement).
        let run = |bounded: bool| {
            let model = ChannelModel::default();
            let d = model.range_for_snr_m(0.0, 15.0);
            let mut m = Medium::new(model, 9);
            m.retire_consumed(bounded);
            let a = m.attach(RadioConfig::default());
            let b = m.attach(RadioConfig {
                position_m: (d, 0.0),
                sensitivity_dbm: -110.0,
                ..Default::default()
            });
            let mut got = Vec::new();
            let mut t = Instant::ZERO;
            for i in 0..500u64 {
                t = m.transmit(a, Instant::from_ms(i), quiet_params(), vec![0u8; 1000]);
                if i % 10 == 9 {
                    got.extend(m.take_inbox(b, t));
                    m.release(a, t);
                }
            }
            got.extend(m.take_inbox(b, t + Duration::from_secs(1)));
            got
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn release_skips_without_delivering() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        m.release(b, Instant::from_secs(1));
        // The frame was passed over, not queued.
        assert!(m.take_inbox(b, Instant::from_secs(2)).is_empty());
    }
}
