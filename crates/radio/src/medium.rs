//! The broadcast medium: radios at positions, transmissions with
//! airtime, per-receiver SNR/PER, collisions with physical capture.
//!
//! The medium is PHY-agnostic: callers pass each transmission's airtime
//! and decode threshold (computed from `wile_dot11::phy` one layer up),
//! so this crate does not depend on the 802.11 crate and can carry BLE
//! advertising PDUs with identical semantics.
//!
//! # Determinism
//!
//! Loss decisions are derived from a per-(transmission, receiver) hash of
//! the medium's seed, so results do not depend on the order receivers
//! poll their inboxes.

use crate::channel::ChannelModel;
use crate::per::packet_error_rate;
use crate::time::{Duration, Instant};

/// Identifies one attached radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RadioId(pub u32);

/// Static configuration of an attached radio.
#[derive(Debug, Clone, Copy)]
pub struct RadioConfig {
    /// Position in metres (planar).
    pub position_m: (f64, f64),
    /// Channel number the radio is tuned to (2.4 GHz numbering, or the
    /// BLE advertising channel index — only equality matters).
    pub channel: u8,
    /// Below this received power (dBm) the radio does not even detect
    /// the frame (no interference contribution is modelled below it
    /// either — a simplification).
    pub sensitivity_dbm: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            position_m: (0.0, 0.0),
            channel: 6,
            sensitivity_dbm: -92.0,
        }
    }
}

/// Parameters of one transmission.
#[derive(Debug, Clone, Copy)]
pub struct TxParams {
    /// On-air duration of the PPDU.
    pub airtime: Duration,
    /// Transmit power, dBm.
    pub power_dbm: f64,
    /// SNR (dB) at which this frame's modulation decodes with 50 % PER
    /// for a 1000-byte frame (see `wile_dot11::phy::PhyRate::min_snr_db`).
    pub min_snr_db: f64,
}

/// A frame as it arrived at one receiver.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// Delivery time (end of the PPDU).
    pub at: Instant,
    /// The transmitting radio.
    pub from: RadioId,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio at this receiver, dB.
    pub snr_db: f64,
    /// The frame bytes (possibly corrupted by fault injection upstream).
    pub bytes: Vec<u8>,
}

#[derive(Debug, Clone)]
struct Transmission {
    from: RadioId,
    start: Instant,
    end: Instant,
    channel: u8,
    params: TxParams,
    bytes: Vec<u8>,
}

/// How much stronger (dB) the wanted signal must be than an overlapping
/// interferer for the receiver to capture it anyway.
pub const CAPTURE_MARGIN_DB: f64 = 10.0;

/// The shared broadcast medium.
///
/// ```
/// use wile_radio::{Medium, RadioConfig};
/// use wile_radio::medium::TxParams;
/// use wile_radio::{Duration, Instant};
///
/// let mut m = Medium::new(Default::default(), 42);
/// let sensor = m.attach(RadioConfig { position_m: (0.0, 0.0), ..Default::default() });
/// let phone = m.attach(RadioConfig { position_m: (3.0, 0.0), ..Default::default() });
///
/// m.transmit(sensor, Instant::from_ms(10), TxParams {
///     airtime: Duration::from_us(50), power_dbm: 0.0, min_snr_db: 25.0,
/// }, b"beacon".to_vec());
///
/// let rx = m.take_inbox(phone, Instant::from_secs(1));
/// assert_eq!(rx.len(), 1);
/// assert_eq!(rx[0].bytes, b"beacon");
/// ```
#[derive(Debug)]
pub struct Medium {
    model: ChannelModel,
    seed: u64,
    radios: Vec<RadioConfig>,
    txs: Vec<Transmission>,
    /// Per-receiver cursor into `txs`: everything before it has been
    /// offered to that receiver already.
    cursors: Vec<usize>,
    last_start: Instant,
    /// Total frames ever transmitted (for stats).
    tx_count: u64,
}

impl Medium {
    /// A medium with the given propagation model and loss seed.
    pub fn new(model: ChannelModel, seed: u64) -> Self {
        Medium {
            model,
            seed,
            radios: Vec::new(),
            txs: Vec::new(),
            cursors: Vec::new(),
            last_start: Instant::ZERO,
            tx_count: 0,
        }
    }

    /// Attach a radio; returns its id.
    pub fn attach(&mut self, cfg: RadioConfig) -> RadioId {
        self.radios.push(cfg);
        self.cursors.push(0);
        RadioId(self.radios.len() as u32 - 1)
    }

    /// The propagation model in use.
    pub fn model(&self) -> &ChannelModel {
        &self.model
    }

    /// Number of attached radios.
    pub fn radio_count(&self) -> usize {
        self.radios.len()
    }

    /// Total transmissions offered to the medium so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Transmit `bytes` from `from` starting at `at`.
    ///
    /// Transmissions must be issued in non-decreasing start-time order
    /// (the event queue guarantees this in multi-device scenarios);
    /// issuing one earlier than the previous start panics, because
    /// collision resolution would silently miss it.
    ///
    /// Returns the end-of-frame instant.
    pub fn transmit(
        &mut self,
        from: RadioId,
        at: Instant,
        params: TxParams,
        bytes: Vec<u8>,
    ) -> Instant {
        assert!(
            at >= self.last_start,
            "transmissions must be issued in time order ({at} < {})",
            self.last_start
        );
        self.last_start = at;
        let end = at + params.airtime;
        let channel = self.radios[from.0 as usize].channel;
        self.txs.push(Transmission {
            from,
            start: at,
            end,
            channel,
            params,
            bytes,
        });
        self.tx_count += 1;
        end
    }

    /// Whether `listener` would sense the medium busy at `at` (any
    /// in-flight transmission on its channel above its sensitivity).
    pub fn is_busy(&self, listener: RadioId, at: Instant) -> bool {
        let cfg = self.radios[listener.0 as usize];
        self.txs.iter().rev().any(|tx| {
            tx.start <= at
                && at < tx.end
                && tx.channel == cfg.channel
                && tx.from != listener
                && self.rx_power(tx, listener) >= cfg.sensitivity_dbm
        })
    }

    /// Collect every frame that finished arriving at `listener` by
    /// `up_to`, applying SNR-based loss and collision capture. Frames are
    /// returned once; later calls continue where this one left off.
    ///
    /// Call this only after all transmissions starting before `up_to`
    /// have been issued, or late transmissions may miss collisions.
    pub fn take_inbox(&mut self, listener: RadioId, up_to: Instant) -> Vec<RxFrame> {
        let cfg = self.radios[listener.0 as usize];
        let mut out = Vec::new();
        let mut cursor = self.cursors[listener.0 as usize];
        while cursor < self.txs.len() {
            let tx = &self.txs[cursor];
            if tx.end > up_to {
                break;
            }
            if let Some(frame) = self.receive_one(cursor, listener, cfg) {
                out.push(frame);
            }
            cursor += 1;
        }
        self.cursors[listener.0 as usize] = cursor;
        out
    }

    /// Iterate over every transmission carried so far (for pcap export
    /// and statistics). Yields `(from, start, end, bytes)`.
    pub fn transmissions(&self) -> impl Iterator<Item = (RadioId, Instant, Instant, &[u8])> + '_ {
        self.txs
            .iter()
            .map(|t| (t.from, t.start, t.end, t.bytes.as_slice()))
    }

    fn rx_power(&self, tx: &Transmission, listener: RadioId) -> f64 {
        let a = self.radios[tx.from.0 as usize].position_m;
        let b = self.radios[listener.0 as usize].position_m;
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        self.model.rx_power_dbm(tx.params.power_dbm, d) + self.shadow_db(tx.from, listener)
    }

    /// Static log-normal shadowing for a link: symmetric, deterministic
    /// in (seed, node pair), zero when the model's sigma is zero. This
    /// is classic block shadowing — obstacles do not move during a run.
    fn shadow_db(&self, a: RadioId, b: RadioId) -> f64 {
        let sigma = self.model.shadowing_sigma_db;
        if sigma == 0.0 {
            return 0.0;
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let u1 = Self::unit_hash(self.seed ^ 0x5AAD_0001, lo, hi);
        let u2 = Self::unit_hash(self.seed ^ 0x5AAD_0002, lo, hi);
        // Box–Muller for a standard normal from two uniforms.
        let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        sigma * z
    }

    fn unit_hash(seed: u64, a: u32, b: u32) -> f64 {
        let mut x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a as u64 + 1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(b as u64 + 1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn receive_one(&self, tx_idx: usize, listener: RadioId, cfg: RadioConfig) -> Option<RxFrame> {
        let tx = &self.txs[tx_idx];
        if tx.from == listener || tx.channel != cfg.channel {
            return None;
        }
        let rssi = self.rx_power(tx, listener);
        if rssi < cfg.sensitivity_dbm {
            return None;
        }
        // Collision check: any other transmission overlapping in time on
        // the same channel, heard above sensitivity, within the capture
        // margin, destroys this frame at this receiver.
        for (j, other) in self.txs.iter().enumerate() {
            if j == tx_idx || other.channel != tx.channel || other.from == listener {
                continue;
            }
            let overlaps = other.start < tx.end && tx.start < other.end;
            if !overlaps {
                continue;
            }
            let interferer = self.rx_power(other, listener);
            if interferer >= cfg.sensitivity_dbm && rssi < interferer + CAPTURE_MARGIN_DB {
                return None;
            }
        }
        let snr = rssi - self.model.effective_noise_dbm();
        let per = packet_error_rate(snr, tx.params.min_snr_db, tx.bytes.len());
        if self.loss_roll(tx_idx, listener) < per {
            return None;
        }
        Some(RxFrame {
            at: tx.end,
            from: tx.from,
            rssi_dbm: rssi,
            snr_db: snr,
            bytes: tx.bytes.clone(),
        })
    }

    /// Uniform [0,1) roll, deterministic in (seed, tx, receiver).
    fn loss_roll(&self, tx_idx: usize, listener: RadioId) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tx_idx as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(listener.0 as u64 + 1);
        // SplitMix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_params() -> TxParams {
        TxParams {
            airtime: Duration::from_us(100),
            power_dbm: 0.0,
            min_snr_db: 15.0,
        }
    }

    fn two_node_medium(distance: f64) -> (Medium, RadioId, RadioId) {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            position_m: (distance, 0.0),
            ..Default::default()
        });
        (m, a, b)
    }

    #[test]
    fn close_range_delivery() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"hello".to_vec());
        let rx = m.take_inbox(b, Instant::from_secs(1));
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].bytes, b"hello");
        assert_eq!(rx[0].from, a);
        assert_eq!(rx[0].at, Instant::from_ms(1) + Duration::from_us(100));
        assert!(rx[0].snr_db > 40.0);
    }

    #[test]
    fn sender_does_not_hear_itself() {
        let (mut m, a, _b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(a, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn out_of_range_not_delivered() {
        // Default model: sensitivity -92 dBm at 0 dBm tx → ~50+ m range;
        // use 10 km to be decisively out of range.
        let (mut m, a, b) = two_node_medium(10_000.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(b, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn different_channels_do_not_mix() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            channel: 1,
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            channel: 6,
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(b, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn inbox_consumes_once() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"x".to_vec());
        assert_eq!(m.take_inbox(b, Instant::from_secs(1)).len(), 1);
        assert!(m.take_inbox(b, Instant::from_secs(2)).is_empty());
    }

    #[test]
    fn inbox_respects_deadline() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(10), quiet_params(), b"x".to_vec());
        assert!(m.take_inbox(b, Instant::from_ms(5)).is_empty());
        assert_eq!(m.take_inbox(b, Instant::from_ms(11)).len(), 1);
    }

    #[test]
    fn overlapping_equal_power_transmissions_collide() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            position_m: (2.0, 0.0),
            ..Default::default()
        });
        let rx = m.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        m.transmit(a, Instant::from_us(0), quiet_params(), b"A".to_vec());
        m.transmit(b, Instant::from_us(50), quiet_params(), b"B".to_vec());
        // Receiver equidistant: neither captures.
        assert!(m.take_inbox(rx, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn capture_lets_much_stronger_frame_survive() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let near = m.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        let far = m.attach(RadioConfig {
            position_m: (40.0, 0.0),
            ..Default::default()
        });
        let rx = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        m.transmit(near, Instant::from_us(0), quiet_params(), b"N".to_vec());
        m.transmit(far, Instant::from_us(50), quiet_params(), b"F".to_vec());
        let frames = m.take_inbox(rx, Instant::from_secs(1));
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].bytes, b"N");
    }

    #[test]
    fn non_overlapping_sequential_frames_both_arrive() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_us(0), quiet_params(), b"1".to_vec());
        m.transmit(a, Instant::from_us(200), quiet_params(), b"2".to_vec());
        assert_eq!(m.take_inbox(b, Instant::from_secs(1)).len(), 2);
    }

    #[test]
    fn busy_sensing() {
        let (mut m, a, b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_us(100), quiet_params(), b"x".to_vec());
        assert!(!m.is_busy(b, Instant::from_us(50)));
        assert!(m.is_busy(b, Instant::from_us(150)));
        assert!(!m.is_busy(b, Instant::from_us(250)));
        // The sender itself is not "busy" from its own frame.
        assert!(!m.is_busy(a, Instant::from_us(150)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_transmit_panics() {
        let (mut m, a, _b) = two_node_medium(2.0);
        m.transmit(a, Instant::from_ms(10), quiet_params(), vec![]);
        m.transmit(a, Instant::from_ms(5), quiet_params(), vec![]);
    }

    #[test]
    fn marginal_snr_loses_some_frames() {
        // Place the receiver where SNR ≈ the decode threshold: expect
        // partial loss, not all-or-nothing.
        let model = ChannelModel::default();
        let d = model.range_for_snr_m(0.0, 15.0);
        let mut m = Medium::new(model, 7);
        let a = m.attach(RadioConfig::default());
        let b = m.attach(RadioConfig {
            position_m: (d, 0.0),
            sensitivity_dbm: -110.0,
            ..Default::default()
        });
        let mut t = Instant::ZERO;
        for _ in 0..200 {
            t = m.transmit(a, t + Duration::from_ms(1), quiet_params(), vec![0u8; 1000]);
        }
        let got = m.take_inbox(b, t + Duration::from_secs(1)).len();
        assert!(got > 20 && got < 180, "got {got}/200");
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let model = ChannelModel::default();
            let d = model.range_for_snr_m(0.0, 15.0);
            let mut m = Medium::new(model, seed);
            let a = m.attach(RadioConfig::default());
            let b = m.attach(RadioConfig {
                position_m: (d, 0.0),
                sensitivity_dbm: -110.0,
                ..Default::default()
            });
            let mut t = Instant::ZERO;
            for _ in 0..50 {
                t = m.transmit(a, t + Duration::from_ms(1), quiet_params(), vec![0u8; 1000]);
            }
            m.take_inbox(b, t + Duration::from_secs(1))
                .iter()
                .map(|f| f.at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn shadowing_is_deterministic_symmetric_and_off_by_default() {
        let shadowed = ChannelModel {
            shadowing_sigma_db: 8.0,
            ..Default::default()
        };
        let mut m = Medium::new(shadowed, 5);
        let a = m.attach(RadioConfig::default());
        let b = m.attach(RadioConfig {
            position_m: (10.0, 0.0),
            ..Default::default()
        });
        let c = m.attach(RadioConfig {
            position_m: (0.0, 10.0),
            ..Default::default()
        });
        let p = quiet_params();
        m.transmit(a, Instant::from_us(0), p, b"1".to_vec());
        m.transmit(b, Instant::from_ms(1), p, b"2".to_vec());
        m.transmit(a, Instant::from_ms(2), p, b"3".to_vec());

        let at_b: Vec<f64> = m
            .take_inbox(b, Instant::from_secs(1))
            .iter()
            .map(|f| f.rssi_dbm)
            .collect();
        let at_c: Vec<f64> = m
            .take_inbox(c, Instant::from_secs(1))
            .iter()
            .map(|f| f.rssi_dbm)
            .collect();
        // Same link, same static shadow: frames 1 and 3 at B identical.
        assert_eq!(at_b.len(), 2);
        assert!((at_b[0] - at_b[1]).abs() < 1e-9);
        // B→A shadow equals A→B shadow (symmetry): the rssi C measured
        // from A differs from B's (different links, different shadows)…
        assert!(!at_c.is_empty());
        assert_ne!(at_b[0], at_c[0]);
        // …despite equal geometric distance (10 m both ways).
        let plain = Medium::new(ChannelModel::default(), 5);
        let _ = plain; // zero-sigma medium applies no shadow at all:
        let mut m0 = Medium::new(ChannelModel::default(), 5);
        let a0 = m0.attach(RadioConfig::default());
        let b0 = m0.attach(RadioConfig {
            position_m: (10.0, 0.0),
            ..Default::default()
        });
        m0.transmit(a0, Instant::from_us(0), p, b"1".to_vec());
        let rssi = m0.take_inbox(b0, Instant::from_secs(1))[0].rssi_dbm;
        let want = ChannelModel::default().rx_power_dbm(0.0, 10.0);
        assert!((rssi - want).abs() < 1e-9);
    }

    #[test]
    fn hidden_terminal_collision() {
        // The classic topology: A and C each in range of B but far from
        // each other. Both transmit overlapping frames; B loses both,
        // and neither A nor C senses the other busy.
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig {
            position_m: (0.0, 0.0),
            ..Default::default()
        });
        let b = m.attach(RadioConfig {
            position_m: (40.0, 0.0),
            ..Default::default()
        });
        let c = m.attach(RadioConfig {
            position_m: (80.0, 0.0),
            ..Default::default()
        });
        // 80 m apart at 0 dBm: below sensitivity for each other, but
        // 40 m is within DSSS range of B.
        let p = TxParams {
            airtime: Duration::from_ms(1),
            power_dbm: 0.0,
            min_snr_db: 4.0,
        };
        m.transmit(a, Instant::from_us(0), p, b"from-a".to_vec());
        // C cannot sense A's ongoing transmission…
        assert!(!m.is_busy(c, Instant::from_us(500)));
        // …but B can.
        assert!(m.is_busy(b, Instant::from_us(500)));
        m.transmit(c, Instant::from_us(500), p, b"from-c".to_vec());
        // Both frames are destroyed at B.
        assert!(m.take_inbox(b, Instant::from_secs(1)).is_empty());
    }

    #[test]
    fn tx_count_and_transmissions_iterator() {
        let (mut m, a, _b) = two_node_medium(2.0);
        m.transmit(a, Instant::ZERO, quiet_params(), b"x".to_vec());
        m.transmit(a, Instant::from_ms(1), quiet_params(), b"y".to_vec());
        assert_eq!(m.tx_count(), 2);
        let all: Vec<_> = m.transmissions().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].3, b"y");
    }
}
