//! Medium-level counters and their public snapshot.
//!
//! The medium's receive paths take `&self` (delivery modelling is
//! logically read-only), so the live tallies sit in `Cell`s; callers
//! see only the plain [`MediumStats`] snapshot. Counting is always on —
//! a handful of integer increments per frame is far below measurement
//! noise even on the metro hot path — and purely observational, so
//! behaviour with and without a consumer attached is identical.

use std::cell::Cell;

/// A point-in-time snapshot of the medium's internal counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediumStats {
    /// Frames offered to the medium (`transmit` calls).
    pub tx_attempts: u64,
    /// Receptions culled because the arrival was below the receiver's
    /// sensitivity floor.
    pub culled_sensitivity: u64,
    /// Receptions destroyed by an overlapping frame within the capture
    /// margin.
    pub collision_losses: u64,
    /// Receptions lost to the SNR-derived packet error rate roll.
    pub per_losses: u64,
    /// Frames actually delivered into an inbox.
    pub delivered: u64,
    /// Link-budget cache hits in `rx_power`.
    pub cache_hits: u64,
    /// Link-budget cache misses (fresh path-loss computations).
    pub cache_misses: u64,
    /// High-water mark of retained (unretired) transmissions.
    pub retained_high_water: u64,
}

/// Interior-mutable tallies owned by the medium.
#[derive(Debug, Clone, Default)]
pub(crate) struct MediumCounters {
    pub(crate) culled_sensitivity: Cell<u64>,
    pub(crate) collision_losses: Cell<u64>,
    pub(crate) per_losses: Cell<u64>,
    pub(crate) delivered: Cell<u64>,
    pub(crate) cache_hits: Cell<u64>,
    pub(crate) cache_misses: Cell<u64>,
    pub(crate) retained_high_water: Cell<u64>,
}

impl MediumCounters {
    pub(crate) fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    pub(crate) fn high_water(&self, retained: u64) {
        if retained > self.retained_high_water.get() {
            self.retained_high_water.set(retained);
        }
    }

    pub(crate) fn snapshot(&self, tx_attempts: u64) -> MediumStats {
        MediumStats {
            tx_attempts,
            culled_sensitivity: self.culled_sensitivity.get(),
            collision_losses: self.collision_losses.get(),
            per_losses: self.per_losses.get(),
            delivered: self.delivered.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            retained_high_water: self.retained_high_water.get(),
        }
    }
}
