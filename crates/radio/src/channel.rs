//! Propagation model: log-distance path loss with optional log-normal
//! shadowing, plus the receiver noise floor.
//!
//! The paper's §5.4 range statement — "a physical bitrate of 72 Mbps at
//! transmission power of 0 dBm … has a similar range as BLE at the same
//! transmission power (i.e., a few meters)" — falls out of this model:
//! at 0 dBm and path-loss exponent 3, MCS7's ~25 dB SNR requirement dies
//! within a handful of meters, while 1 Mb/s DSSS reaches tens of meters.

/// Propagation and receiver-front-end parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChannelModel {
    /// Path loss at the reference distance (1 m), dB. ~40 dB at 2.4 GHz.
    pub pl0_db: f64,
    /// Path-loss exponent (2 = free space, 3–4 = indoor).
    pub exponent: f64,
    /// Thermal-noise floor for a 20 MHz channel, dBm.
    pub noise_floor_dbm: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Log-normal shadowing standard deviation, dB (0 = deterministic).
    pub shadowing_sigma_db: f64,
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel {
            pl0_db: 40.0,
            exponent: 3.0,
            noise_floor_dbm: -101.0,
            noise_figure_db: 6.0,
            shadowing_sigma_db: 0.0,
        }
    }
}

impl ChannelModel {
    /// A free-space-ish benign indoor channel.
    pub fn benign() -> Self {
        ChannelModel {
            exponent: 2.2,
            ..Default::default()
        }
    }

    /// Path loss in dB over `distance_m` metres (clamped below 0.1 m).
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        self.pl0_db + 10.0 * self.exponent * d.log10()
    }

    /// Received power in dBm for a transmit power and distance.
    pub fn rx_power_dbm(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        tx_power_dbm - self.path_loss_db(distance_m)
    }

    /// Effective noise level the SNR is computed against, dBm.
    pub fn effective_noise_dbm(&self) -> f64 {
        self.noise_floor_dbm + self.noise_figure_db
    }

    /// Signal-to-noise ratio in dB at the receiver.
    pub fn snr_db(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        self.rx_power_dbm(tx_power_dbm, distance_m) - self.effective_noise_dbm()
    }

    /// The largest distance at which `min_snr_db` is still met (metres),
    /// ignoring shadowing. Solves the path-loss equation for d.
    pub fn range_for_snr_m(&self, tx_power_dbm: f64, min_snr_db: f64) -> f64 {
        let budget = tx_power_dbm - self.effective_noise_dbm() - min_snr_db - self.pl0_db;
        10f64.powf(budget / (10.0 * self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_increases_with_distance() {
        let c = ChannelModel::default();
        assert!(c.path_loss_db(10.0) > c.path_loss_db(1.0));
        // 1 m = reference loss.
        assert!((c.path_loss_db(1.0) - 40.0).abs() < 1e-9);
        // One decade of distance adds 10·n dB.
        assert!((c.path_loss_db(10.0) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn snr_at_one_meter_is_strong() {
        let c = ChannelModel::default();
        // 0 dBm at 1 m: rx = -40 dBm, noise = -95 dBm, SNR = 55 dB.
        assert!((c.snr_db(0.0, 1.0) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn range_inverts_snr() {
        let c = ChannelModel::default();
        for snr in [5.0, 15.0, 25.0] {
            let d = c.range_for_snr_m(0.0, snr);
            assert!((c.snr_db(0.0, d) - snr).abs() < 1e-6, "snr {snr}");
        }
    }

    #[test]
    fn paper_range_claim_qualitatively_holds() {
        // At 0 dBm: MCS7 (needs ~25 dB) reaches a few metres; DSSS-1
        // (needs ~4 dB) reaches tens of metres.
        let c = ChannelModel::default();
        let mcs7_range = c.range_for_snr_m(0.0, 25.0);
        let dsss_range = c.range_for_snr_m(0.0, 4.0);
        assert!(mcs7_range > 2.0 && mcs7_range < 15.0, "mcs7 {mcs7_range}");
        assert!(dsss_range > 30.0, "dsss {dsss_range}");
        assert!(dsss_range / mcs7_range > 4.0);
    }

    #[test]
    fn distance_clamped_near_zero() {
        let c = ChannelModel::default();
        assert_eq!(c.path_loss_db(0.0), c.path_loss_db(0.1));
        assert!(c.path_loss_db(0.0) < c.path_loss_db(1.0));
    }

    #[test]
    fn higher_tx_power_more_range() {
        let c = ChannelModel::default();
        assert!(c.range_for_snr_m(20.0, 25.0) > c.range_for_snr_m(0.0, 25.0));
    }
}
