//! Time-scheduled fault plans: phased disturbances for robustness
//! campaigns.
//!
//! A [`FaultPlan`] is an ordered list of non-overlapping
//! [`FaultPhase`]s, each activating one [`Disturbance`] for a time
//! window. [`FaultTimeline`] is the stateful, seeded applier a
//! simulation drives: hand it every frame's on-air instant and it
//! answers deterministically whether the frame survived, whether the
//! gateway is in an outage window, how much extra clock skew devices
//! experience, and whether the air currently looks busy to a
//! carrier-sensing device.
//!
//! Everything derives from the plan's single seed plus the phase index,
//! so two runs of the same plan produce byte-identical fault sequences
//! regardless of what else the simulation does between calls.

use crate::fault::{CorruptionMode, FaultInjector, FaultOutcome};
use crate::gilbert::GilbertElliott;
use crate::time::{Duration, Instant};

/// One kind of channel or infrastructure disturbance.
#[derive(Debug, Clone, PartialEq)]
pub enum Disturbance {
    /// A periodic foreign transmitter (e.g. a Wi-Fi camera uplink):
    /// every `period` it holds the air for `airtime`. Frames
    /// overlapping a burst are burst-corrupted rather than cleanly
    /// lost — the collision destroys part of the frame and the FCS
    /// catches it.
    Interferer {
        /// Burst repetition period.
        period: Duration,
        /// Air occupancy per burst.
        airtime: Duration,
        /// Octets scrambled in an overlapped frame.
        corrupt_octets: usize,
    },
    /// A duty-cycled wide-band jammer: `on` out of every `cycle` the
    /// air is unusable and any frame on it is lost outright.
    Jammer {
        /// Full on+off cycle length.
        cycle: Duration,
        /// Leading portion of each cycle the jammer transmits.
        on: Duration,
    },
    /// The gateway is down (reboot, backhaul loss): nothing it would
    /// have received in the window is delivered.
    GatewayOutage,
    /// Device oscillators run an extra `extra_ppm` fast for the phase
    /// (temperature step); the simulation applies it via
    /// `DriftClock::shift_ppm`.
    ClockSkew {
        /// Additional frequency error in parts per million.
        extra_ppm: f64,
    },
    /// Bursty loss: a Gilbert–Elliott chain with the given mean dwell
    /// times, lossless Good state and `loss_bad` loss while Bad.
    BurstLoss {
        /// Mean dwell in the Good state.
        good_dwell: Duration,
        /// Mean dwell in the Bad (burst) state.
        bad_dwell: Duration,
        /// Loss probability while Bad.
        loss_bad: f64,
    },
    /// Independent (Bernoulli) loss at probability `p` per frame.
    RandomLoss {
        /// Per-frame loss probability.
        p: f64,
    },
}

impl Disturbance {
    /// Short lowercase tag used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Disturbance::Interferer { .. } => "interferer",
            Disturbance::Jammer { .. } => "jammer",
            Disturbance::GatewayOutage => "outage",
            Disturbance::ClockSkew { .. } => "clock-skew",
            Disturbance::BurstLoss { .. } => "burst-loss",
            Disturbance::RandomLoss { .. } => "random-loss",
        }
    }
}

/// One disturbance active over `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPhase {
    /// Phase start (inclusive).
    pub start: Instant,
    /// Phase end (exclusive).
    pub end: Instant,
    /// What happens during the phase.
    pub disturbance: Disturbance,
    /// Human-readable label for reports.
    pub label: String,
}

impl FaultPhase {
    /// A phase spanning `[start, end)`.
    pub fn new(
        start: Instant,
        end: Instant,
        disturbance: Disturbance,
        label: impl Into<String>,
    ) -> Self {
        FaultPhase {
            start,
            end,
            disturbance,
            label: label.into(),
        }
    }

    /// Whether `at` falls inside the phase.
    pub fn contains(&self, at: Instant) -> bool {
        at >= self.start && at < self.end
    }
}

/// An ordered, validated schedule of disturbances.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    phases: Vec<FaultPhase>,
    seed: u64,
}

impl FaultPlan {
    /// Build a plan. Phases must be well-formed (`start < end`),
    /// sorted by start time, and non-overlapping — overlap would make
    /// per-phase attribution in campaign reports ambiguous.
    pub fn new(phases: Vec<FaultPhase>, seed: u64) -> Self {
        for (i, p) in phases.iter().enumerate() {
            assert!(
                p.start < p.end,
                "phase {i} ({}) is empty or inverted",
                p.label
            );
            match &p.disturbance {
                Disturbance::Interferer {
                    period,
                    airtime,
                    corrupt_octets,
                } => {
                    assert!(
                        *airtime <= *period && *airtime > Duration::ZERO,
                        "phase {i}: interferer airtime must be in (0, period]"
                    );
                    assert!(*corrupt_octets >= 1, "phase {i}: zero-octet corruption");
                }
                Disturbance::Jammer { cycle, on } => {
                    assert!(
                        *on <= *cycle && *on > Duration::ZERO,
                        "phase {i}: jammer on-time must be in (0, cycle]"
                    );
                }
                Disturbance::RandomLoss { p: prob } => {
                    assert!((0.0..=1.0).contains(prob), "phase {i}: loss p out of range");
                }
                Disturbance::BurstLoss { loss_bad, .. } => {
                    assert!(
                        (0.0..=1.0).contains(loss_bad),
                        "phase {i}: loss_bad out of range"
                    );
                }
                Disturbance::GatewayOutage | Disturbance::ClockSkew { .. } => {}
            }
        }
        for w in phases.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "phases '{}' and '{}' overlap or are out of order",
                w[0].label,
                w[1].label
            );
        }
        FaultPlan { phases, seed }
    }

    /// The phases, in schedule order.
    pub fn phases(&self) -> &[FaultPhase] {
        &self.phases
    }

    /// The plan's seed (all per-phase randomness derives from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Index of the phase covering `at`, if any.
    pub fn phase_index(&self, at: Instant) -> Option<usize> {
        self.phases.iter().position(|p| p.contains(at))
    }

    /// End of the last phase (`Instant::ZERO` for an empty plan).
    pub fn end(&self) -> Instant {
        self.phases.last().map(|p| p.end).unwrap_or(Instant::ZERO)
    }
}

/// Per-phase mutable state (loss chains, corruptors), split out so the
/// timeline can be rebuilt from its plan for a reproducibility check.
#[derive(Debug, Clone)]
enum PhaseState {
    Chain(GilbertElliott),
    Bernoulli(FaultInjector),
    Corruptor(FaultInjector),
    Passive,
}

/// The stateful applier for a [`FaultPlan`].
///
/// Call sites must present frames in non-decreasing time order (the
/// same discipline [`crate::medium::Medium`] already imposes) so the
/// per-phase loss chains advance monotonically.
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    plan: FaultPlan,
    states: Vec<PhaseState>,
}

impl FaultTimeline {
    /// Instantiate per-phase state from the plan and its seed.
    pub fn new(plan: FaultPlan) -> Self {
        let seed = plan.seed();
        let states = plan
            .phases()
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                // Distinct, stable stream per phase.
                let phase_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                match &phase.disturbance {
                    Disturbance::BurstLoss {
                        good_dwell,
                        bad_dwell,
                        loss_bad,
                    } => {
                        let mut chain =
                            GilbertElliott::from_dwell_times(*good_dwell, *bad_dwell, phase_seed);
                        chain.loss_bad = *loss_bad;
                        PhaseState::Chain(chain)
                    }
                    Disturbance::RandomLoss { p } => {
                        PhaseState::Bernoulli(FaultInjector::new(*p, 0.0, phase_seed))
                    }
                    Disturbance::Interferer { corrupt_octets, .. } => {
                        PhaseState::Corruptor(FaultInjector::with_mode(
                            0.0,
                            1.0,
                            CorruptionMode::Burst {
                                octets: *corrupt_octets,
                            },
                            phase_seed,
                        ))
                    }
                    _ => PhaseState::Passive,
                }
            })
            .collect();
        FaultTimeline { plan, states }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Apply the disturbance (if any) active at `at` to a frame on the
    /// air at that instant. Mutates `frame` in the interferer-overlap
    /// case exactly like [`FaultInjector::apply`].
    pub fn apply(&mut self, at: Instant, frame: &mut [u8]) -> FaultOutcome {
        let Some(idx) = self.plan.phase_index(at) else {
            return FaultOutcome::Pass;
        };
        let phase_start = self.plan.phases()[idx].start;
        match (&self.plan.phases[idx].disturbance, &mut self.states[idx]) {
            (Disturbance::Jammer { cycle, on }, _) => {
                if in_duty_window(at, phase_start, *cycle, *on) {
                    FaultOutcome::Dropped
                } else {
                    FaultOutcome::Pass
                }
            }
            (
                Disturbance::Interferer {
                    period, airtime, ..
                },
                PhaseState::Corruptor(inj),
            ) => {
                if in_duty_window(at, phase_start, *period, *airtime) {
                    inj.apply(frame)
                } else {
                    FaultOutcome::Pass
                }
            }
            (Disturbance::BurstLoss { .. }, PhaseState::Chain(chain)) => {
                if chain.frame_lost(at) {
                    FaultOutcome::Dropped
                } else {
                    FaultOutcome::Pass
                }
            }
            (Disturbance::RandomLoss { .. }, PhaseState::Bernoulli(inj)) => inj.apply(frame),
            _ => FaultOutcome::Pass,
        }
    }

    /// [`FaultTimeline::apply`] for a shared frame buffer
    /// ([`crate::RxFrame::bytes`] is an `Arc<[u8]>`): outside any active
    /// phase the bytes are untouched and nothing is allocated — the
    /// common case on the metro hot path — while a corrupting
    /// disturbance copies the frame on write so other receivers holding
    /// the same `Arc` never observe the mutation.
    pub fn apply_shared(&mut self, at: Instant, bytes: &mut std::sync::Arc<[u8]>) -> FaultOutcome {
        if self.plan.phase_index(at).is_none() {
            return FaultOutcome::Pass;
        }
        let mut buf = bytes.to_vec();
        let out = self.apply(at, &mut buf);
        if buf[..] != bytes[..] {
            *bytes = buf.into();
        }
        out
    }

    /// Whether the gateway is inside an outage window at `at`.
    pub fn gateway_down(&self, at: Instant) -> bool {
        matches!(
            self.plan
                .phase_index(at)
                .map(|i| &self.plan.phases()[i].disturbance),
            Some(Disturbance::GatewayOutage)
        )
    }

    /// Extra oscillator skew (ppm) in force at `at`.
    pub fn skew_ppm(&self, at: Instant) -> f64 {
        match self
            .plan
            .phase_index(at)
            .map(|i| &self.plan.phases()[i].disturbance)
        {
            Some(Disturbance::ClockSkew { extra_ppm }) => *extra_ppm,
            _ => 0.0,
        }
    }

    /// Whether a carrier-sensing device would find the air occupied at
    /// `at` (jammer on, or inside an interferer burst). This is the
    /// signal blind adaptation keys off when no feedback is available.
    pub fn air_busy(&self, at: Instant) -> bool {
        let Some(idx) = self.plan.phase_index(at) else {
            return false;
        };
        let phase = &self.plan.phases()[idx];
        match &phase.disturbance {
            Disturbance::Jammer { cycle, on } => in_duty_window(at, phase.start, *cycle, *on),
            Disturbance::Interferer {
                period, airtime, ..
            } => in_duty_window(at, phase.start, *period, *airtime),
            _ => false,
        }
    }
}

/// Whether `at` falls in the leading `on` portion of the `cycle`-length
/// duty cycle anchored at `anchor`.
fn in_duty_window(at: Instant, anchor: Instant, cycle: Duration, on: Duration) -> bool {
    let elapsed = at.since(anchor).as_nanos();
    elapsed % cycle.as_nanos() < on.as_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Instant {
        Instant::ZERO + Duration::from_secs(s)
    }

    fn demo_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            vec![
                FaultPhase::new(
                    secs(10),
                    secs(20),
                    Disturbance::Jammer {
                        cycle: Duration::from_ms(100),
                        on: Duration::from_ms(50),
                    },
                    "jam",
                ),
                FaultPhase::new(
                    secs(30),
                    secs(40),
                    Disturbance::BurstLoss {
                        good_dwell: Duration::from_ms(400),
                        bad_dwell: Duration::from_ms(200),
                        loss_bad: 1.0,
                    },
                    "burst",
                ),
                FaultPhase::new(secs(50), secs(55), Disturbance::GatewayOutage, "down"),
                FaultPhase::new(
                    secs(60),
                    secs(70),
                    Disturbance::ClockSkew { extra_ppm: 40.0 },
                    "skew",
                ),
            ],
            seed,
        )
    }

    #[test]
    fn quiet_gaps_pass_everything() {
        let mut tl = FaultTimeline::new(demo_plan(1));
        let mut f = vec![0u8; 32];
        for s in [0, 5, 25, 45, 58, 75] {
            assert_eq!(tl.apply(secs(s), &mut f), FaultOutcome::Pass, "t={s}s");
        }
        assert_eq!(f, vec![0u8; 32]);
    }

    #[test]
    fn jammer_duty_cycle_is_exact() {
        let mut tl = FaultTimeline::new(demo_plan(1));
        let mut f = vec![0u8; 8];
        // 10 ms into a 100 ms cycle with 50 ms on → jammed.
        let jammed = secs(10) + Duration::from_ms(10);
        assert_eq!(tl.apply(jammed, &mut f), FaultOutcome::Dropped);
        assert!(tl.air_busy(jammed));
        // 60 ms into the cycle → clear.
        let clear = secs(10) + Duration::from_ms(60);
        assert_eq!(tl.apply(clear, &mut f), FaultOutcome::Pass);
        assert!(!tl.air_busy(clear));
    }

    #[test]
    fn burst_phase_loses_roughly_stationary_fraction() {
        let mut tl = FaultTimeline::new(demo_plan(2));
        let mut lost = 0;
        let n = 4000;
        for i in 0..n {
            // Spread frames across the 10 s burst phase.
            let at = secs(30) + Duration::from_us(i * 2_500);
            let mut f = vec![0u8; 8];
            if tl.apply(at, &mut f) == FaultOutcome::Dropped {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        // Stationary: 200/(400+200) = 1/3 of time Bad, loss_bad = 1.
        assert!((rate - 1.0 / 3.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn outage_and_skew_windows() {
        let tl = FaultTimeline::new(demo_plan(3));
        assert!(tl.gateway_down(secs(52)));
        assert!(!tl.gateway_down(secs(49)));
        assert!((tl.skew_ppm(secs(65)) - 40.0).abs() < f64::EPSILON);
        assert_eq!(tl.skew_ppm(secs(52)), 0.0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed| {
            let mut tl = FaultTimeline::new(demo_plan(seed));
            (0..2000u64)
                .map(|i| {
                    let mut f = vec![0u8; 16];
                    tl.apply(secs(0) + Duration::from_ms(i * 40), &mut f)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic]
    fn overlapping_phases_rejected() {
        FaultPlan::new(
            vec![
                FaultPhase::new(secs(0), secs(10), Disturbance::GatewayOutage, "a"),
                FaultPhase::new(secs(5), secs(15), Disturbance::GatewayOutage, "b"),
            ],
            0,
        );
    }

    #[test]
    fn interferer_corrupts_overlapping_frames() {
        let plan = FaultPlan::new(
            vec![FaultPhase::new(
                secs(0),
                secs(100),
                Disturbance::Interferer {
                    period: Duration::from_ms(100),
                    airtime: Duration::from_ms(20),
                    corrupt_octets: 6,
                },
                "cam",
            )],
            4,
        );
        let mut tl = FaultTimeline::new(plan);
        let mut hit = vec![0u8; 32];
        assert_eq!(
            tl.apply(secs(1) + Duration::from_ms(5), &mut hit),
            FaultOutcome::Corrupted
        );
        assert!(hit.iter().any(|&b| b != 0));
        let mut miss = vec![0u8; 32];
        assert_eq!(
            tl.apply(secs(1) + Duration::from_ms(50), &mut miss),
            FaultOutcome::Pass
        );
        assert_eq!(miss, vec![0u8; 32]);
    }
}
