//! Minimal libpcap writer (the classic microsecond format), so anything
//! the simulated medium carried can be opened in Wireshark — the same
//! debugging loop the smoltcp examples provide with `--pcap`.

use crate::medium::Medium;
use crate::time::Instant;
use std::io::{self, Write};

/// DLT for raw IEEE 802.11 frames (no radiotap header).
pub const LINKTYPE_IEEE802_11: u32 = 105;
/// DLT for Bluetooth LE link-layer (with pseudo-header — we omit it and
/// use this constant only as a tag; Wireshark decodes the 802.11 dumps,
/// BLE dumps are for byte-level inspection).
pub const LINKTYPE_BLUETOOTH_LE_LL: u32 = 251;

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    sink: W,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header for the given link type.
    pub fn new(mut sink: W, linktype: u32) -> io::Result<Self> {
        sink.write_all(&0xA1B2_C3D4u32.to_le_bytes())?; // magic
        sink.write_all(&2u16.to_le_bytes())?; // major
        sink.write_all(&4u16.to_le_bytes())?; // minor
        sink.write_all(&0u32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&65_535u32.to_le_bytes())?; // snaplen
        sink.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter { sink })
    }

    /// Append one frame captured at virtual time `at`.
    pub fn write_frame(&mut self, at: Instant, frame: &[u8]) -> io::Result<()> {
        let us = at.as_us();
        self.sink
            .write_all(&((us / 1_000_000) as u32).to_le_bytes())?;
        self.sink
            .write_all(&((us % 1_000_000) as u32).to_le_bytes())?;
        self.sink.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.sink.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.sink.write_all(frame)?;
        Ok(())
    }

    /// Flush and recover the sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Dump every transmission a medium carried into a pcap byte buffer.
pub fn dump_medium(medium: &Medium) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), LINKTYPE_IEEE802_11).expect("vec write");
    for (_, start, _, bytes) in medium.transmissions() {
        w.write_frame(start, bytes).expect("vec write");
    }
    w.into_inner().expect("vec flush")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::medium::{RadioConfig, TxParams};
    use crate::time::Duration;

    #[test]
    fn global_header_layout() {
        let w = PcapWriter::new(Vec::new(), LINKTYPE_IEEE802_11).unwrap();
        let bytes = w.into_inner().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(&bytes[20..24], &105u32.to_le_bytes());
    }

    #[test]
    fn frame_record_layout() {
        let mut w = PcapWriter::new(Vec::new(), LINKTYPE_IEEE802_11).unwrap();
        w.write_frame(Instant::from_secs_f64(1.5), b"abcd").unwrap();
        let bytes = w.into_inner().unwrap();
        let rec = &bytes[24..];
        assert_eq!(&rec[0..4], &1u32.to_le_bytes()); // seconds
        assert_eq!(&rec[4..8], &500_000u32.to_le_bytes()); // microseconds
        assert_eq!(&rec[8..12], &4u32.to_le_bytes()); // caplen
        assert_eq!(&rec[12..16], &4u32.to_le_bytes()); // origlen
        assert_eq!(&rec[16..], b"abcd");
    }

    #[test]
    fn dump_medium_contains_all_frames() {
        let mut m = Medium::new(ChannelModel::default(), 1);
        let a = m.attach(RadioConfig::default());
        let p = TxParams {
            airtime: Duration::from_us(10),
            power_dbm: 0.0,
            min_snr_db: 5.0,
        };
        m.transmit(a, Instant::from_ms(1), p, b"one".to_vec());
        m.transmit(a, Instant::from_ms(2), p, b"two!".to_vec());
        let pcap = dump_medium(&m);
        // 24 header + (16+3) + (16+4).
        assert_eq!(pcap.len(), 24 + 19 + 20);
    }
}
