//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use wile_radio::channel::ChannelModel;
use wile_radio::clock::DriftClock;
use wile_radio::gilbert::GilbertElliott;
use wile_radio::medium::{Medium, RadioConfig, TxParams};
use wile_radio::naive::NaiveMedium;
use wile_radio::per::packet_error_rate;
use wile_radio::time::{Duration, Instant};
use wile_radio::{EventQueue, NaiveEventQueue};

/// One randomized radio: position in a 60 m box, one of three channels,
/// one of two sensitivities.
fn arb_radio() -> impl Strategy<Value = RadioConfig> {
    (0.0f64..60.0, 0.0f64..60.0, 0u8..3, any::<bool>()).prop_map(|(x, y, ch, deaf)| RadioConfig {
        position_m: (x, y),
        channel: [1, 6, 11][ch as usize],
        sensitivity_dbm: if deaf { -75.0 } else { -92.0 },
    })
}

/// A wide-area radio: positions span a ~half-kilometre metro hall —
/// dozens of spatial grid cells, so the sharded inbox walk has real
/// neighbourhoods to cull (most pairs are beyond the sensitivity
/// horizon of a 0/10 dBm transmission).
fn arb_radio_wide() -> impl Strategy<Value = RadioConfig> {
    (-200.0f64..400.0, -200.0f64..400.0, 0u8..3, any::<bool>()).prop_map(|(x, y, ch, deaf)| {
        RadioConfig {
            position_m: (x, y),
            channel: [1, 6, 11][ch as usize],
            sensitivity_dbm: if deaf { -75.0 } else { -92.0 },
        }
    })
}

/// One randomized transmission: sender index, start gap (µs), airtime
/// (µs), payload length, tx power.
type TrafficItem = (usize, u64, u64, usize, bool);

fn arb_traffic() -> impl Strategy<Value = Vec<TrafficItem>> {
    prop::collection::vec(
        (0usize..8, 0u64..800, 20u64..400, 1usize..40, any::<bool>()),
        1..60,
    )
}

/// Drive the optimized and naive media through identical topology,
/// traffic, interleaved polls and carrier-sense queries; every
/// observable must match bit-for-bit.
fn assert_media_equivalent(
    seed: u64,
    sigma_db: f64,
    radios: &[RadioConfig],
    traffic: &[TrafficItem],
    poll_every: usize,
    bounded: bool,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let model = ChannelModel {
        shadowing_sigma_db: sigma_db,
        ..Default::default()
    };
    let mut fast = Medium::new(model, seed);
    let mut slow = NaiveMedium::new(model, seed);
    fast.retire_consumed(bounded);
    let ids: Vec<_> = radios.iter().map(|&cfg| fast.attach(cfg)).collect();
    for &cfg in radios {
        slow.attach(cfg);
    }
    let mut t = Instant::ZERO;
    for (k, &(sender, gap_us, airtime_us, len, high_power)) in traffic.iter().enumerate() {
        let from = ids[sender % ids.len()];
        t += Duration::from_us(gap_us);
        let params = TxParams {
            airtime: Duration::from_us(airtime_us),
            power_dbm: if high_power { 10.0 } else { 0.0 },
            min_snr_db: 15.0,
        };
        let payload = vec![k as u8; len];
        let end_fast = fast.transmit(from, t, params, payload.clone());
        let end_slow = slow.transmit(from, t, params, payload);
        prop_assert_eq!(end_fast, end_slow);
        // Carrier sense mid-frame must agree for every radio.
        let mid = t + Duration::from_us(airtime_us / 2);
        for &r in &ids {
            prop_assert_eq!(fast.is_busy(r, mid), slow.is_busy(r, mid));
        }
        if (k + 1) % poll_every == 0 {
            for &r in &ids {
                prop_assert_eq!(fast.take_inbox(r, t), slow.take_inbox(r, t));
            }
        }
    }
    let drain = t + Duration::from_secs(1);
    for &r in &ids {
        prop_assert_eq!(fast.take_inbox(r, drain), slow.take_inbox(r, drain));
    }
    if bounded {
        // The whole point of bounded mode: consumed history is gone.
        prop_assert!(fast.live_tx_count() <= traffic.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &ms) in times.iter().enumerate() {
            q.schedule(Instant::from_ms(ms), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t, i));
        }
        prop_assert_eq!(out.len(), times.len());
        // Sorted by time, ties by insertion order.
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn event_queue_ties_stay_fifo_under_interleaved_schedule_and_pop(
        // Each op: (schedule-time bucket, pops to attempt before the next
        // schedule). Few buckets → many exact-time ties, which is the
        // property under test: ties must pop in schedule order even when
        // pops are interleaved between the schedules.
        ops in prop::collection::vec((0u64..6, 0usize..3), 1..120),
    ) {
        let mut q = EventQueue::new();
        // Popping mid-stream moves `now` forward; later schedules into
        // earlier buckets are "past" events, which the queue documents
        // as firing immediately — exclude them from the FIFO claim by
        // scheduling relative to the queue's own now.
        let mut scheduled = 0u64;
        let mut popped: Vec<(Instant, u64)> = Vec::new();
        for &(bucket, pops) in &ops {
            let at = q.now() + Duration::from_ms(bucket);
            q.schedule(at, scheduled);
            scheduled += 1;
            for _ in 0..pops {
                if let Some(e) = q.pop() {
                    popped.push(e);
                }
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len() as u64, scheduled);
        // Among events popped in one drain stretch, equal times must
        // preserve schedule order (payload = schedule ordinal).
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(
                    w[0].1 < w[1].1,
                    "tie at {} popped out of schedule order: {} before {}",
                    w[0].0, w[0].1, w[1].1
                );
            }
        }
        // And every event was popped exactly once.
        let mut ids: Vec<u64> = popped.iter().map(|e| e.1).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..scheduled).collect::<Vec<_>>());
    }

    #[test]
    fn timer_wheel_matches_naive_heap_pop_for_pop(
        // Random interleaving of schedules and pops. Times come from a
        // few coarse buckets scaled up to spread across wheel levels,
        // plus a jitter that often collides — exercising same-instant
        // FIFO ties, far-future cascades, and (since pops move `now`
        // while schedules may land behind it) the overdue path.
        ops in prop::collection::vec(
            (0u64..6, 0u64..4, 0usize..3, any::<bool>()),
            1..200,
        ),
    ) {
        let mut wheel = EventQueue::new();
        let mut naive = NaiveEventQueue::new();
        for (label, &(bucket, jitter, pops, absolute)) in ops.iter().enumerate() {
            let label = label as u64;
            // Absolute times can fall behind `now` once pops happen —
            // the legacy past-scheduling path both queues must agree on.
            let at = if absolute {
                Instant::from_ms(bucket * 40 + jitter)
            } else {
                wheel.now() + Duration::from_ms(bucket * 40 + jitter)
            };
            wheel.schedule(at, label);
            naive.schedule(at, label);
            prop_assert_eq!(wheel.peek_time(), naive.peek_time());
            prop_assert_eq!(wheel.len(), naive.len());
            for _ in 0..pops {
                prop_assert_eq!(wheel.pop(), naive.pop());
                prop_assert_eq!(wheel.now(), naive.now());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), naive.pop());
            prop_assert_eq!(a, b);
            prop_assert_eq!(wheel.now(), naive.now());
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && naive.is_empty());
    }

    #[test]
    fn timer_wheel_matches_naive_heap_in_monotonic_mode(
        // The kernel's usage pattern: monotonic mode on, all schedules
        // via `schedule_after` (never in the past), drains at periodic
        // deadlines. Tight buckets force many exact ties.
        ops in prop::collection::vec((0u64..5, 0u64..3), 1..150),
        drain_every in 1usize..8,
    ) {
        let mut wheel = EventQueue::new();
        let mut naive = NaiveEventQueue::new();
        wheel.assert_monotonic(true);
        naive.assert_monotonic(true);
        let mut wheel_buf = Vec::new();
        for (k, &(bucket, extra)) in ops.iter().enumerate() {
            let label = k as u64;
            let delay = Duration::from_ms(bucket * 25) + Duration::from_us(extra);
            let a1 = wheel.schedule_after(wheel.now(), delay, label);
            let a2 = naive.schedule_after(naive.now(), delay, label);
            prop_assert_eq!(a1, a2);
            if (k + 1) % drain_every == 0 {
                let deadline = wheel.now() + Duration::from_ms(50);
                wheel_buf.clear();
                wheel.drain_until_into(deadline, &mut wheel_buf);
                let naive_out = naive.drain_until(deadline);
                prop_assert_eq!(&wheel_buf, &naive_out);
            }
        }
        prop_assert_eq!(
            wheel.drain_until(Instant::from_secs(3600)),
            naive.drain_until(Instant::from_secs(3600))
        );
    }

    #[test]
    fn schedule_batch_matches_item_by_item_schedules(
        start_ms in 0u64..1_000,
        stride_us in 0u64..5_000,
        count in 0usize..400,
        pre in prop::collection::vec(0u64..2_000, 0..20),
    ) {
        // A batched wake train interleaved with ordinary schedules must
        // be indistinguishable from scheduling each wake individually.
        let mut batched = EventQueue::new();
        let mut single = EventQueue::new();
        for (i, &ms) in pre.iter().enumerate() {
            batched.schedule(Instant::from_ms(ms), u64::MAX - i as u64);
            single.schedule(Instant::from_ms(ms), u64::MAX - i as u64);
        }
        let start = Instant::from_ms(start_ms);
        let stride = Duration::from_us(stride_us);
        batched.schedule_batch(start, stride, (0..count).map(|i| i as u64));
        for i in 0..count {
            single.schedule(start + stride.mul(i as u64), i as u64);
        }
        loop {
            let (a, b) = (batched.pop(), single.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn drain_until_includes_boundary_and_leaves_the_rest(
        times in prop::collection::vec(0u64..2_000, 1..150),
        deadline in 0u64..2_000,
    ) {
        let mut q = EventQueue::new();
        for (i, &us) in times.iter().enumerate() {
            q.schedule(Instant::from_us(us), i);
        }
        let deadline = Instant::from_us(deadline);
        let drained = q.drain_until(deadline);
        // Exactly the events at-or-before the deadline come out —
        // boundary *inclusive* — and everything later stays queued.
        let expect = times.iter().filter(|&&us| Instant::from_us(us) <= deadline).count();
        prop_assert_eq!(drained.len(), expect);
        prop_assert_eq!(q.len(), times.len() - expect);
        for (t, _) in &drained {
            prop_assert!(*t <= deadline);
        }
        if let Some(next) = q.peek_time() {
            prop_assert!(next > deadline);
        }
        // Drained events are themselves time-ordered with FIFO ties.
        for w in drained.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn duration_arithmetic_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = Duration::from_nanos(a);
        let db = Duration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
        let t = Instant::from_nanos(a) + db;
        prop_assert_eq!(t.since(Instant::from_nanos(a)), db);
    }

    #[test]
    fn per_is_probability_and_monotone(
        snr in -40.0f64..60.0,
        min_snr in 0.0f64..30.0,
        len in 1usize..2304,
    ) {
        let p = packet_error_rate(snr, min_snr, len);
        prop_assert!((0.0..=1.0).contains(&p));
        let p_better = packet_error_rate(snr + 5.0, min_snr, len);
        prop_assert!(p_better <= p);
    }

    #[test]
    fn path_loss_monotone_in_distance(d1 in 0.1f64..1000.0, d2 in 0.1f64..1000.0) {
        prop_assume!(d1 < d2);
        let c = ChannelModel::default();
        prop_assert!(c.path_loss_db(d1) <= c.path_loss_db(d2));
        prop_assert!(c.snr_db(0.0, d1) >= c.snr_db(0.0, d2));
    }

    #[test]
    fn clock_drift_bounded(ppm in -100.0f64..100.0, secs in 1u64..100_000, seed in any::<u64>()) {
        let mut c = DriftClock::new(ppm, Duration::ZERO, seed);
        let nominal = Duration::from_secs(secs);
        let actual = c.true_duration(nominal);
        let err = (actual.as_nanos() as i128 - nominal.as_nanos() as i128).abs() as f64;
        let bound = nominal.as_nanos() as f64 * (ppm.abs() * 1e-6) + 2.0;
        prop_assert!(err <= bound, "err {err} bound {bound}");
    }

    #[test]
    fn medium_delivery_deterministic_per_seed(
        seed in any::<u64>(),
        dist in 1.0f64..80.0,
        n in 1usize..30,
    ) {
        let run = || {
            let mut m = Medium::new(ChannelModel::default(), seed);
            let a = m.attach(RadioConfig::default());
            let b = m.attach(RadioConfig { position_m: (dist, 0.0), ..Default::default() });
            let mut t = Instant::ZERO;
            for i in 0..n {
                t = m.transmit(
                    a,
                    t + Duration::from_ms(1),
                    TxParams { airtime: Duration::from_us(100), power_dbm: 0.0, min_snr_db: 15.0 },
                    vec![i as u8; 100],
                );
            }
            m.take_inbox(b, t + Duration::from_secs(1))
                .iter()
                .map(|f| f.bytes[0])
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn delivered_frames_arrive_in_order_and_intact(
        dist in 0.5f64..5.0,
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..20),
    ) {
        // Close range: everything must arrive, in order, bit-exact.
        let mut m = Medium::new(ChannelModel::default(), 9);
        let a = m.attach(RadioConfig::default());
        let b = m.attach(RadioConfig { position_m: (dist, 0.0), ..Default::default() });
        let mut t = Instant::ZERO;
        for p in &payloads {
            t = m.transmit(
                a,
                t + Duration::from_ms(1),
                TxParams { airtime: Duration::from_us(50), power_dbm: 0.0, min_snr_db: 5.0 },
                p.clone(),
            );
        }
        let got = m.take_inbox(b, t + Duration::from_secs(1));
        prop_assert_eq!(got.len(), payloads.len());
        for (rx, p) in got.iter().zip(&payloads) {
            prop_assert_eq!(&rx.bytes[..], &p[..]);
        }
        for w in got.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn gilbert_elliott_stationary_loss_matches_closed_form(
        p_enter in 0.05f64..0.5,
        p_exit in 0.05f64..0.5,
        loss_good in 0.0f64..0.2,
        loss_bad in 0.5f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut ge = GilbertElliott::new(
            p_enter, p_exit, loss_good, loss_bad, Duration::from_ms(1), seed,
        );
        let n = 100_000usize;
        let lost = (0..n).filter(|_| ge.next_frame()).count();
        let measured = lost as f64 / n as f64;
        let expected = ge.stationary_loss();
        // The samples are Markov-correlated: the asymptotic variance of
        // the occupancy fraction is pi(1-pi) * (2/(p_enter+p_exit) - 1)
        // / n; loss indicators add at most Bernoulli noise on top.
        let pi = ge.stationary_bad();
        let occupancy_var = pi * (1.0 - pi) * (2.0 / (p_enter + p_exit) - 1.0) / n as f64;
        let bernoulli_var = expected * (1.0 - expected) / n as f64;
        let tol = 6.0 * (occupancy_var + bernoulli_var).sqrt() + 1e-3;
        prop_assert!(
            (measured - expected).abs() <= tol,
            "measured {measured:.4} vs closed form {expected:.4} (tol {tol:.4})"
        );
    }

    #[test]
    fn inbox_cursor_never_duplicates(
        n in 1usize..20,
        poll_points in prop::collection::vec(0u64..40, 1..10),
    ) {
        let mut m = Medium::new(ChannelModel::default(), 4);
        let a = m.attach(RadioConfig::default());
        let b = m.attach(RadioConfig { position_m: (1.0, 0.0), ..Default::default() });
        let mut t = Instant::ZERO;
        for i in 0..n {
            t = m.transmit(
                a,
                t + Duration::from_ms(1),
                TxParams { airtime: Duration::from_us(50), power_dbm: 0.0, min_snr_db: 5.0 },
                vec![i as u8],
            );
        }
        let mut polls: Vec<u64> = poll_points;
        polls.sort_unstable();
        let mut total = 0;
        for ms in polls {
            total += m.take_inbox(b, Instant::from_ms(ms)).len();
        }
        total += m.take_inbox(b, t + Duration::from_secs(1)).len();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn indexed_medium_matches_naive_reference(
        seed in any::<u64>(),
        radios in prop::collection::vec(arb_radio(), 2..8),
        traffic in arb_traffic(),
        poll_every in 1usize..10,
    ) {
        assert_media_equivalent(seed, 0.0, &radios, &traffic, poll_every, false)?;
    }

    #[test]
    fn indexed_medium_matches_naive_reference_with_shadowing(
        seed in any::<u64>(),
        sigma in 1.0f64..10.0,
        radios in prop::collection::vec(arb_radio(), 2..8),
        traffic in arb_traffic(),
        poll_every in 1usize..10,
    ) {
        assert_media_equivalent(seed, sigma, &radios, &traffic, poll_every, false)?;
    }

    #[test]
    fn sharded_medium_matches_naive_over_wide_areas(
        seed in any::<u64>(),
        sigma in 0.0f64..10.0,
        radios in prop::collection::vec(arb_radio_wide(), 2..10),
        traffic in arb_traffic(),
        poll_every in 1usize..10,
    ) {
        // Multi-cell topologies (including negative coordinates) where
        // the spatial cull skips most sender cells: the delivered frame
        // streams and carrier-sense answers must still be bit-identical
        // to the naive full walk.
        assert_media_equivalent(seed, sigma, &radios, &traffic, poll_every, false)?;
    }

    #[test]
    fn bounded_medium_matches_naive_reference(
        seed in any::<u64>(),
        radios in prop::collection::vec(arb_radio(), 2..8),
        traffic in arb_traffic(),
        poll_every in 1usize..10,
    ) {
        // Retirement enabled: deliveries, loss rolls and in-contract
        // carrier sense must still match the full-history reference.
        assert_media_equivalent(seed, 0.0, &radios, &traffic, poll_every, true)?;
    }
}
