//! # wile-gatewayd — the ingestion service front-end
//!
//! Everything upstream of this crate is a library run inside one
//! process; this crate is the subsystem that makes the cluster
//! pipeline a *service*: a long-running daemon that accepts byte-exact
//! 802.11 beacon frames over a framed transport, stamps them into
//! cluster lanes, and drives the existing `GatewayIngest → ReportQueue
//! → ClusterAggregator` pipeline — with the same telemetry and the
//! same conservation laws as the in-process scenarios.
//!
//! The architecture is a strict two-layer split:
//!
//! * [`core`] — [`GatewaydCore`], the deterministic heart. Pure, IO-
//!   free, injected time: frames go in with their arrival stamps,
//!   deliveries come out. No sockets, no clocks, no threads.
//! * [`daemon`] — the thin IO shell: transports (TCP, Unix socket,
//!   framed pipe/file), the JSONL run trace, graceful shutdown, and
//!   the [`scrape`] endpoint serving the telemetry registry as a text
//!   scrape.
//!
//! Determinism is the headline feature. A scenario run records its
//! exact per-lane frame stream to a `.wcap` file ([`capture`]); the
//! daemon replays the file — over a socket, a pipe, or directly — and
//! reproduces the in-process cluster run **byte for byte**: same
//! deliveries, same counters, same FNV-1a digest. The differential
//! oracle `tests/gatewayd_diff.rs` holds that identity across seeds.
//!
//! Wire format: length-prefixed records ([`codec`]) carrying a tagged
//! vocabulary ([`wire`]) — header, frame, advance-watermark, shutdown.
//! The [`feeder`] module (and the bundled `wile-feeder` binary) stream
//! a capture into a running daemon at max rate or wall-clock pace.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod capture;
pub mod codec;
pub mod core;
pub mod daemon;
pub mod feeder;
pub mod scrape;
pub mod signal;
pub mod wire;

pub use crate::core::{GatewaydConfig, GatewaydCore, GatewaydReport, IngestError, PollRecord};
pub use capture::{
    capture_chaos_to, capture_metro_to, metro_header, read_capture, replay_capture, ReplayError,
};
pub use daemon::{Daemon, DaemonOptions, DaemonState};
pub use wire::{LaneFrame, WcapHeader, WireError, WireRecord};
