//! `.wcap` capture files: record a scenario's exact per-lane frame
//! stream, replay it through [`GatewaydCore`], get the identical run.
//!
//! The capture point is the scenario [`FrameTap`] — it observes every
//! frame a cluster lane pulls off the medium, pre-admission and
//! pre-fault, stamped with its arrival instant. A capture is therefore
//! a complete substitute for the radio side of a run: feed it back
//! through the same pipeline parameters (carried in the header) and
//! every poll batch, election, counter, and delivery digest reproduces
//! byte for byte. `tests/gatewayd_diff.rs` asserts exactly that
//! against `scenarios::metro` across seeds.

use crate::codec::FrameDecoder;
use crate::core::{GatewaydConfig, GatewaydCore, GatewaydReport, IngestError};
use crate::wire::{LaneFrame, WcapHeader, WireError, WireRecord};
use std::cell::RefCell;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::rc::Rc;
use wile_radio::medium::RxFrame;
use wile_radio::time::Instant;
use wile_scenarios::chaos::{run_chaos_with, ChaosConfig, ChaosReport};
use wile_scenarios::metro::{run_metro_with, FrameTap, MetroConfig, MetroReport};
use wile_telemetry::Telemetry;

/// The header a metro (or chaos, via its metro half) configuration
/// produces: the pipeline parameters a replay must reuse, plus
/// provenance.
pub fn metro_header(cfg: &MetroConfig) -> WcapHeader {
    WcapHeader {
        gateways: cfg.gateways as u32,
        queue_capacity: cfg.queue_capacity,
        poll_every: cfg.poll_every,
        stale_after: cfg.stale_after,
        horizon: Instant::ZERO + cfg.duration + cfg.period,
        seed: cfg.seed,
        devices: cfg.devices as u64,
    }
}

/// Streaming `.wcap` writer: header up front, one frame record per
/// tap firing. IO errors latch (the tap has nowhere to return them)
/// and surface from [`finish`](CaptureWriter::finish).
pub struct CaptureWriter<W: Write> {
    w: W,
    scratch: Vec<u8>,
    frames: u64,
    error: Option<io::Error>,
}

impl<W: Write> CaptureWriter<W> {
    /// Start a capture: writes the header record immediately.
    pub fn new(w: W, header: &WcapHeader) -> Self {
        let mut cw = CaptureWriter {
            w,
            scratch: Vec::new(),
            frames: 0,
            error: None,
        };
        cw.record(&WireRecord::Header(header.clone()));
        cw
    }

    /// Append one frame record (clones the frame's byte `Arc`, not the
    /// bytes).
    pub fn frame(&mut self, lane: usize, f: &RxFrame) {
        self.record(&WireRecord::Frame(LaneFrame {
            lane: lane as u32,
            frame: f.clone(),
        }));
        self.frames += 1;
    }

    fn record(&mut self, r: &WireRecord) {
        if self.error.is_some() {
            return;
        }
        self.scratch.clear();
        r.encode(&mut self.scratch);
        if let Err(e) = self.w.write_all(&self.scratch) {
            self.error = Some(e);
        }
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush and close, surfacing any latched IO error. Returns the
    /// inner writer and the frame count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.w.flush()?;
        Ok((self.w, self.frames))
    }
}

/// Build the boxed scenario tap feeding a shared capture writer. The
/// writer comes back out of the `Rc` (via [`finish_shared`]) after the
/// runner drops its sink (and with it the tap's clone).
pub fn capture_tap<W: Write + 'static>(writer: &Rc<RefCell<CaptureWriter<W>>>) -> FrameTap {
    let w = Rc::clone(writer);
    Box::new(move |lane, f| w.borrow_mut().frame(lane, f))
}

fn unwrap_writer<W: Write>(writer: Rc<RefCell<CaptureWriter<W>>>) -> CaptureWriter<W> {
    Rc::try_unwrap(writer)
        .map(RefCell::into_inner)
        .unwrap_or_else(|_| unreachable!("runner dropped its tap with the sink"))
}

/// Reclaim a shared capture writer after the scenario runner returned
/// (the runner's sink — and the tap's `Rc` clone — is dropped by
/// then), flushing and surfacing any latched IO error.
pub fn finish_shared<W: Write>(writer: Rc<RefCell<CaptureWriter<W>>>) -> io::Result<(W, u64)> {
    unwrap_writer(writer).finish()
}

/// Run the metro scenario with a `.wcap` recorder attached, writing
/// the capture to `w`. The report is byte-identical to an untapped
/// [`run_metro`](wile_scenarios::metro::run_metro) — taps observe only.
pub fn capture_metro<W: Write + 'static>(
    cfg: &MetroConfig,
    workers: usize,
    w: W,
) -> io::Result<(MetroReport, W, u64)> {
    let writer = Rc::new(RefCell::new(CaptureWriter::new(w, &metro_header(cfg))));
    let mut tel = Telemetry::off();
    let report = run_metro_with(cfg, workers, &mut tel, Some(capture_tap(&writer)));
    let (w, frames) = unwrap_writer(writer).finish()?;
    Ok((report, w, frames))
}

/// [`capture_metro`] straight to a file path.
pub fn capture_metro_to(
    cfg: &MetroConfig,
    workers: usize,
    path: &Path,
) -> io::Result<(MetroReport, u64)> {
    let (report, _, frames) = capture_metro(cfg, workers, BufWriter::new(File::create(path)?))?;
    Ok((report, frames))
}

/// Run the chaos campaign with a `.wcap` recorder attached. The tap
/// fires on the raw air stream — including frames a crashed lane never
/// ingests — so the capture documents offered load, while the chaos
/// report's fault accounting stays the authority on what survived.
pub fn capture_chaos<W: Write + 'static>(
    cfg: &ChaosConfig,
    workers: usize,
    w: W,
) -> io::Result<(ChaosReport, W, u64)> {
    let writer = Rc::new(RefCell::new(CaptureWriter::new(
        w,
        &metro_header(&cfg.metro),
    )));
    let mut tel = Telemetry::off();
    let report = run_chaos_with(cfg, workers, &mut tel, Some(capture_tap(&writer)));
    let (w, frames) = unwrap_writer(writer).finish()?;
    Ok((report, w, frames))
}

/// [`capture_chaos`] straight to a file path.
pub fn capture_chaos_to(
    cfg: &ChaosConfig,
    workers: usize,
    path: &Path,
) -> io::Result<(ChaosReport, u64)> {
    let (report, _, frames) = capture_chaos(cfg, workers, BufWriter::new(File::create(path)?))?;
    Ok((report, frames))
}

/// Why a capture stream failed to parse or replay.
#[derive(Debug)]
pub enum ReplayError {
    /// Record or framing layer failure.
    Wire(WireError),
    /// The stream did not start with a header record.
    MissingHeader,
    /// A second header mid-stream.
    UnexpectedHeader,
    /// The core refused a frame (byte-identity is already lost).
    Ingest(IngestError),
    /// Bytes left over after the last complete record.
    TrailingBytes(usize),
    /// Reading the capture source failed.
    Io(io::Error),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Wire(e) => write!(f, "wire: {e}"),
            ReplayError::MissingHeader => write!(f, "capture does not start with a WCAP header"),
            ReplayError::UnexpectedHeader => write!(f, "second header record mid-stream"),
            ReplayError::Ingest(e) => write!(f, "ingest: {e}"),
            ReplayError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last record"),
            ReplayError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<WireError> for ReplayError {
    fn from(e: WireError) -> Self {
        ReplayError::Wire(e)
    }
}

impl From<crate::codec::CodecError> for ReplayError {
    fn from(e: crate::codec::CodecError) -> Self {
        ReplayError::Wire(WireError::Codec(e))
    }
}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> Self {
        ReplayError::Io(e)
    }
}

/// Parse a complete capture byte stream into its header and frames.
/// `Advance` records are tolerated (they carry no frames); `Shutdown`
/// ends the stream.
pub fn read_capture(bytes: &[u8]) -> Result<(WcapHeader, Vec<LaneFrame>), ReplayError> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    let mut header = None;
    let mut frames = Vec::new();
    while let Some(body) = dec.next_record()? {
        match WireRecord::decode(&body)? {
            WireRecord::Header(h) if header.is_none() => header = Some(h),
            WireRecord::Header(_) => return Err(ReplayError::UnexpectedHeader),
            WireRecord::Frame(f) if header.is_some() => frames.push(f),
            WireRecord::Advance { .. } if header.is_some() => {}
            WireRecord::Shutdown if header.is_some() => break,
            _ => return Err(ReplayError::MissingHeader),
        }
    }
    if dec.buffered() > 0 {
        return Err(ReplayError::TrailingBytes(dec.buffered()));
    }
    header
        .map(|h| (h, frames))
        .ok_or(ReplayError::MissingHeader)
}

/// Replay a complete capture through a fresh [`GatewaydCore`] and
/// return the finished report. With `keep_deliveries` the report
/// carries the full delivery stream for `==` against the recording
/// run's; otherwise the digest is the witness.
pub fn replay_capture(
    bytes: &[u8],
    keep_deliveries: bool,
    workers: usize,
) -> Result<GatewaydReport, ReplayError> {
    let (header, frames) = read_capture(bytes)?;
    let mut cfg = GatewaydConfig::from_header(&header);
    cfg.keep_deliveries = keep_deliveries;
    cfg.workers = workers;
    let mut core = GatewaydCore::new(cfg);
    let mut out = Vec::new();
    for f in frames {
        core.offer(f.lane, f.frame, &mut out)
            .map_err(ReplayError::Ingest)?;
    }
    Ok(core.finish(&mut out))
}

/// [`replay_capture`] from a reader (e.g. a capture file).
pub fn replay_capture_from(
    mut r: impl Read,
    keep_deliveries: bool,
    workers: usize,
) -> Result<GatewaydReport, ReplayError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    replay_capture(&bytes, keep_deliveries, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The capture round-trip: record a smoke metro run, read the file
    /// back, and require the header and every frame to survive the
    /// encode/decode byte-exactly (stamps, RSSI bits, frame bytes).
    #[test]
    fn wcap_round_trips_the_recorded_stream() {
        let cfg = MetroConfig::smoke(42);
        let mut recorded: Vec<(u32, RxFrame)> = Vec::new();
        let shadow = Rc::new(RefCell::new(Vec::new()));
        let shadow_tap = Rc::clone(&shadow);
        let writer = Rc::new(RefCell::new(CaptureWriter::new(
            Vec::new(),
            &metro_header(&cfg),
        )));
        let w = Rc::clone(&writer);
        let mut tel = Telemetry::off();
        run_metro_with(
            &cfg,
            1,
            &mut tel,
            Some(Box::new(move |lane, f: &RxFrame| {
                shadow_tap.borrow_mut().push((lane as u32, f.clone()));
                w.borrow_mut().frame(lane, f);
            })),
        );
        recorded.extend(shadow.borrow_mut().drain(..));
        let (bytes, frames) = unwrap_writer(writer).finish().unwrap();
        assert_eq!(frames as usize, recorded.len());
        assert!(frames > 0, "smoke metro must hear frames");

        let (header, parsed) = read_capture(&bytes).unwrap();
        assert_eq!(header, metro_header(&cfg));
        assert_eq!(parsed.len(), recorded.len());
        for (p, (lane, f)) in parsed.iter().zip(&recorded) {
            assert_eq!(p.lane, *lane);
            assert_eq!(&p.frame, f);
        }
    }

    /// Chaos capture: same hook, fault-ridden world; the stream still
    /// parses end to end and the tapped report equals an untapped run.
    #[test]
    fn chaos_capture_records_offered_load() {
        let cfg = ChaosConfig::smoke(7);
        let (report, buf, frames) = capture_chaos(&cfg, 1, Vec::new()).unwrap();
        let untapped = wile_scenarios::chaos::run_chaos(&cfg, 1);
        assert_eq!(report, untapped);
        let (header, parsed) = read_capture(&buf).unwrap();
        assert_eq!(header.gateways as usize, cfg.metro.gateways);
        assert_eq!(parsed.len() as u64, frames);
        assert!(frames > 0);
    }
}
