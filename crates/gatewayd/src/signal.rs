//! Minimal SIGTERM/SIGINT hook with no external crate: on unix, std
//! already links libc, so `signal(2)` is reachable through a single
//! `extern "C"` declaration. The handler does exactly one async-
//! signal-safe thing — store into a static atomic — and the daemon
//! loops poll that flag between reads.
//!
//! This is the only module in the workspace allowed to use `unsafe`
//! (the crate is `deny(unsafe_code)`; the rest of the workspace is
//! `forbid`).

use std::sync::atomic::{AtomicBool, Ordering};

static STOP: AtomicBool = AtomicBool::new(false);

/// Whether a stop signal (or [`request_stop`]) has been seen.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::SeqCst)
}

/// Programmatic stop: same effect as receiving SIGTERM.
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// Testing hook: clear the stop flag.
pub fn reset_stop() {
    STOP.store(false, Ordering::SeqCst);
}

/// Install the SIGTERM/SIGINT handler (no-op off unix).
pub fn install_stop_handler() {
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}
