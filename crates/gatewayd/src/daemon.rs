//! The IO shell around [`GatewaydCore`]: transports, the JSONL run
//! trace, and graceful shutdown.
//!
//! The daemon is deliberately thin. It reads bytes from a transport
//! (TCP, Unix socket, or a framed pipe/file), runs them through the
//! [`FrameDecoder`] → [`WireRecord`] stack, and forwards frames and
//! watermarks into the core. All determinism lives below this layer:
//! the core never sees the transport, and the transport never makes a
//! decision that depends on wall-clock time — a capture replayed over
//! loopback TCP in ten seconds and the same capture read from a file
//! in ten milliseconds produce identical reports.
//!
//! Shutdown discipline: on a `Shutdown` record, end of input, or a
//! stop signal ([`crate::signal`]), the daemon *drains* — every
//! remaining poll through the horizon executes, the final report is
//! computed (with its frame ledger asserted closed: nothing is
//! silently lost), the trace gets its report line, and the process
//! exits 0.

use crate::codec::FrameDecoder;
use crate::core::{GatewaydConfig, GatewaydCore, GatewaydReport, PollRecord};
use crate::signal;
use crate::wire::{WcapHeader, WireRecord};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration as StdDuration;
use wile_telemetry::{Json, Registry};

/// How the daemon builds and runs its core.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Aggregation worker threads (0 → 1; results identical at any
    /// setting).
    pub workers: usize,
    /// Retain the full delivery stream in the final report.
    pub keep_deliveries: bool,
    /// Pre-set pipeline configuration. With `None` the first stream
    /// header establishes the session; with `Some` the core exists
    /// from startup and incoming headers are verified against it.
    pub config: Option<GatewaydConfig>,
}

/// Counters and live core shared between the serve loop and the
/// scrape endpoint.
pub struct DaemonState {
    /// The live core (`None` before the first header or after the
    /// final report).
    pub core: Option<GatewaydCore>,
    /// The final report, once drained.
    pub report: Option<GatewaydReport>,
    /// Connections accepted.
    pub connections: u64,
    /// Frames refused by the core with a typed error (connection
    /// continues; the frame is ledgered as rejected).
    pub frame_errors: u64,
    /// Connections aborted on framing/record errors (past a bad length
    /// prefix there is no resynchronizing).
    pub stream_errors: u64,
    /// Deliveries produced so far.
    pub delivered: u64,
}

impl DaemonState {
    fn new() -> Self {
        DaemonState {
            core: None,
            report: None,
            connections: 0,
            frame_errors: 0,
            stream_errors: 0,
            delivered: 0,
        }
    }

    /// Render the telemetry registry as a text scrape: the live core's
    /// counters while running, the final report's after the drain,
    /// plus the daemon's own front-door counters.
    pub fn render_metrics(&self) -> String {
        let mut reg = Registry::new();
        if let Some(core) = &self.core {
            core.record_telemetry(&mut reg);
        } else if let Some(report) = &self.report {
            report.record_telemetry(&mut reg);
        }
        reg.counter_set("gatewayd.connections", &[], self.connections);
        reg.counter_set("gatewayd.frame_errors", &[], self.frame_errors);
        reg.counter_set("gatewayd.stream_errors", &[], self.stream_errors);
        reg.counter_set("gatewayd.delivered", &[], self.delivered);
        reg.render()
    }

    /// A compact JSON status document for the `/report` endpoint.
    pub fn status_json(&self) -> String {
        let phase = if self.report.is_some() {
            "finished"
        } else if self.core.is_some() {
            "running"
        } else {
            "idle"
        };
        let mut obj = Json::obj()
            .field("phase", Json::str(phase))
            .field("connections", Json::int(self.connections))
            .field("frame_errors", Json::int(self.frame_errors))
            .field("stream_errors", Json::int(self.stream_errors))
            .field("delivered", Json::int(self.delivered));
        if let Some(core) = &self.core {
            obj = obj
                .field("frames_in", Json::int(core.frames_in()))
                .field("rejected", Json::int(core.rejected()))
                .field("staged", Json::int(core.staged_frames() as u64))
                .field("polls", Json::int(core.polls()));
        }
        if let Some(r) = &self.report {
            obj = obj
                .field("frames_in", Json::int(r.frames_in))
                .field("rejected", Json::int(r.rejected))
                .field("late", Json::int(r.late))
                .field("polls", Json::int(r.polls))
                .field("digest", Json::str(format!("{:#018x}", r.delivery_digest)));
        }
        obj.render()
    }
}

/// What a connection's record stream did.
enum ConnStatus {
    /// More bytes expected.
    Open,
    /// Clean `Shutdown` record: drain and exit.
    Shutdown,
    /// Unrecoverable framing/record error: drop the connection, keep
    /// serving.
    Abort,
}

/// The ingestion daemon. One instance serves one run: transports feed
/// it records until a `Shutdown` record, end of input, or a stop
/// signal, and it drains into a final [`GatewaydReport`].
pub struct Daemon {
    opts: DaemonOptions,
    state: Arc<Mutex<DaemonState>>,
    trace: Option<Box<dyn Write + Send>>,
    shutdown_seen: bool,
}

impl Daemon {
    /// Build a daemon. When `trace` is given, the JSONL run trace
    /// streams into it (schema line immediately, one line per poll,
    /// one report line at drain) and per-poll logging is enabled on
    /// the core.
    pub fn new(opts: DaemonOptions, trace: Option<Box<dyn Write + Send>>) -> io::Result<Self> {
        let mut daemon = Daemon {
            opts,
            state: Arc::new(Mutex::new(DaemonState::new())),
            trace,
            shutdown_seen: false,
        };
        if let Some(w) = daemon.trace.as_mut() {
            let line = Json::obj()
                .field("type", Json::str("schema"))
                .field("format", Json::str("wile-gatewayd-trace"))
                .field("version", Json::int(1))
                .render();
            writeln!(w, "{line}")?;
        }
        if let Some(cfg) = daemon.opts.config.clone() {
            let cfg = daemon.apply_opts(cfg);
            daemon.state.lock().unwrap().core = Some(GatewaydCore::new(cfg));
        }
        Ok(daemon)
    }

    /// The shared state handle, for the scrape endpoint.
    pub fn state(&self) -> Arc<Mutex<DaemonState>> {
        Arc::clone(&self.state)
    }

    fn apply_opts(&self, mut cfg: GatewaydConfig) -> GatewaydConfig {
        cfg.workers = self.opts.workers.max(1);
        cfg.keep_deliveries = self.opts.keep_deliveries;
        cfg.log_polls = self.trace.is_some();
        cfg
    }

    fn header_compatible(cfg: &GatewaydConfig, h: &WcapHeader) -> bool {
        cfg.gateways == h.gateways as usize
            && cfg.queue_capacity == h.queue_capacity
            && cfg.poll_every == h.poll_every
            && cfg.stale_after == h.stale_after
            && cfg.horizon == h.horizon
    }

    fn trace_polls(&mut self, polls: &[PollRecord]) -> io::Result<()> {
        let Some(w) = self.trace.as_mut() else {
            return Ok(());
        };
        for p in polls {
            let line = Json::obj()
                .field("type", Json::str("poll"))
                .field("at_ns", Json::int(p.at.as_nanos()))
                .field("delivered", Json::int(p.delivered))
                .field("evicted", Json::int(p.evicted))
                .render();
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    fn trace_report(&mut self, r: &GatewaydReport) -> io::Result<()> {
        let Some(w) = self.trace.as_mut() else {
            return Ok(());
        };
        let line = Json::obj()
            .field("type", Json::str("report"))
            .field("frames_in", Json::int(r.frames_in))
            .field("rejected", Json::int(r.rejected))
            .field("late", Json::int(r.late))
            .field("polls", Json::int(r.polls))
            .field("delivered", Json::int(r.stats.delivered))
            .field("handoffs", Json::int(r.stats.handoffs))
            .field("evicted", Json::int(r.evicted.len() as u64))
            .field("digest", Json::str(format!("{:#018x}", r.delivery_digest)))
            .field("sim_end_ns", Json::int(r.sim_end.as_nanos()))
            .render();
        writeln!(w, "{line}")?;
        w.flush()
    }

    /// Drain every remaining poll through the horizon, compute the
    /// final report, trace it, and publish it to the shared state.
    fn finalize(&mut self) -> io::Result<GatewaydReport> {
        let core = {
            let mut st = self.state.lock().unwrap();
            st.core.take().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "no session established (no stream header and no preset config)",
                )
            })?
        };
        let mut out = Vec::new();
        let report = core.finish(&mut out);
        self.trace_polls(&report.poll_log)?;
        self.trace_report(&report)?;
        let mut st = self.state.lock().unwrap();
        st.delivered += out.len() as u64;
        st.report = Some(report.clone());
        Ok(report)
    }

    /// Decode and apply every complete record the decoder holds.
    fn apply_records(&mut self, dec: &mut FrameDecoder) -> io::Result<ConnStatus> {
        loop {
            let body = match dec.next_record() {
                Ok(Some(b)) => b,
                Ok(None) => return Ok(ConnStatus::Open),
                Err(_) => {
                    self.state.lock().unwrap().stream_errors += 1;
                    return Ok(ConnStatus::Abort);
                }
            };
            let record = match WireRecord::decode(&body) {
                Ok(r) => r,
                Err(_) => {
                    self.state.lock().unwrap().stream_errors += 1;
                    return Ok(ConnStatus::Abort);
                }
            };
            let mut out = Vec::new();
            let mut polls = Vec::new();
            {
                let mut st = self.state.lock().unwrap();
                match record {
                    WireRecord::Header(h) => match &st.core {
                        Some(core) if Self::header_compatible(core.config(), &h) => {}
                        Some(_) => {
                            st.stream_errors += 1;
                            return Ok(ConnStatus::Abort);
                        }
                        None => {
                            let cfg = self.apply_opts(GatewaydConfig::from_header(&h));
                            st.core = Some(GatewaydCore::new(cfg));
                        }
                    },
                    WireRecord::Frame(f) => match st.core.as_mut() {
                        Some(core) => {
                            if core.offer(f.lane, f.frame, &mut out).is_err() {
                                st.frame_errors += 1;
                            }
                        }
                        None => {
                            st.stream_errors += 1;
                            return Ok(ConnStatus::Abort);
                        }
                    },
                    WireRecord::Advance { to } => {
                        if let Some(core) = st.core.as_mut() {
                            core.advance_to(to, &mut out);
                        }
                    }
                    WireRecord::Shutdown => {
                        self.shutdown_seen = true;
                        return Ok(ConnStatus::Shutdown);
                    }
                }
                st.delivered += out.len() as u64;
                if let Some(core) = st.core.as_mut() {
                    if self.trace.is_some() {
                        polls = core.take_poll_log();
                    }
                }
            }
            self.trace_polls(&polls)?;
        }
    }

    /// Pump one connection's bytes into the record stack until the
    /// peer closes, a shutdown/abort, or a stop signal.
    fn pump(&mut self, mut r: impl Read) -> io::Result<()> {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 64 * 1024];
        loop {
            if signal::stop_requested() {
                return Ok(());
            }
            match r.read(&mut buf) {
                Ok(0) => return Ok(()),
                Ok(n) => {
                    dec.push(&buf[..n]);
                    match self.apply_records(&mut dec)? {
                        ConnStatus::Open => {}
                        ConnStatus::Shutdown | ConnStatus::Abort => return Ok(()),
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                // A torn connection is the peer's problem; the daemon
                // keeps its session (frames already offered are in).
                Err(_) => return Ok(()),
            }
        }
    }

    /// Serve a TCP listener: one connection at a time, 50 ms read
    /// slices so stop signals are honored promptly. Returns the final
    /// report after a `Shutdown` record or a stop signal.
    pub fn serve_tcp(&mut self, listener: TcpListener) -> io::Result<GatewaydReport> {
        listener.set_nonblocking(true)?;
        loop {
            if signal::stop_requested() || self.shutdown_seen {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(StdDuration::from_millis(50)))?;
                    self.state.lock().unwrap().connections += 1;
                    self.pump(stream)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(StdDuration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        self.finalize()
    }

    /// Serve a Unix socket listener (same loop as TCP).
    #[cfg(unix)]
    pub fn serve_unix(&mut self, listener: UnixListener) -> io::Result<GatewaydReport> {
        listener.set_nonblocking(true)?;
        loop {
            if signal::stop_requested() || self.shutdown_seen {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(StdDuration::from_millis(50)))?;
                    self.state.lock().unwrap().connections += 1;
                    self.pump(stream)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(StdDuration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        self.finalize()
    }

    /// Serve a framed byte stream directly (stdin pipe mode): records
    /// in, drain at end of input (or `Shutdown` record), report out.
    pub fn serve_reader(&mut self, r: impl Read) -> io::Result<GatewaydReport> {
        self.state.lock().unwrap().connections += 1;
        self.pump(r)?;
        self.finalize()
    }

    /// Replay a `.wcap` file (or any recorded record stream) and
    /// produce the report — the offline end of the determinism
    /// contract.
    pub fn serve_path(&mut self, path: &Path) -> io::Result<GatewaydReport> {
        self.serve_reader(io::BufReader::new(File::open(path)?))
    }
}
