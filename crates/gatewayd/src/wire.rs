//! The gatewayd record vocabulary, shared between the live wire
//! protocol and the `.wcap` capture file format.
//!
//! Both are the same stream of [`codec`](crate::codec) length-prefixed
//! records; the first body byte is a tag:
//!
//! | tag | record | body |
//! |-----|--------|------|
//! | `0x00` | [`WcapHeader`] | magic `WCAP`, schema version, world parameters |
//! | `0x01` | [`LaneFrame`] | lane, arrival stamp, radio, RSSI/SNR bits, raw 802.11 frame bytes |
//! | `0x02` | `Advance` | virtual-time watermark |
//! | `0x03` | `Shutdown` | empty |
//!
//! A capture file is `Header` followed by `Frame`s; a feeder can
//! stream those same bytes down a socket verbatim, append an `Advance`
//! to the horizon and a `Shutdown`, and the daemon replays the run.
//! All integers are little-endian; time is nanoseconds of simulated
//! time (`wile_radio::time`); RSSI/SNR travel as `f64` bit patterns so
//! the replay is bit-exact, never "close".

use crate::codec::{encode_record, CodecError};
use std::fmt;
use std::sync::Arc;
use wile_radio::medium::{RadioId, RxFrame};
use wile_radio::time::{Duration, Instant};

/// Capture-file magic, first bytes of every header record body.
pub const WCAP_MAGIC: [u8; 4] = *b"WCAP";
/// Schema version this build writes and accepts.
pub const WCAP_VERSION: u16 = 1;

/// Sentinel for "unbounded queue" in the header's capacity field.
const UNBOUNDED: u64 = u64::MAX;

const TAG_HEADER: u8 = 0x00;
const TAG_FRAME: u8 = 0x01;
const TAG_ADVANCE: u8 = 0x02;
const TAG_SHUTDOWN: u8 = 0x03;

/// Everything a replay needs to rebuild the cluster the capture was
/// recorded against: the world parameters that shape the poll train
/// and the pipeline, plus provenance (`seed`, `devices`) for humans
/// and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcapHeader {
    /// Cluster lane count.
    pub gateways: u32,
    /// Per-lane report queue bound (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// Cluster poll cadence.
    pub poll_every: Duration,
    /// Stale-device eviction horizon.
    pub stale_after: Duration,
    /// Final poll instant (scenario duration + one beacon period).
    pub horizon: Instant,
    /// World seed the capture was recorded from (provenance).
    pub seed: u64,
    /// Device count (provenance).
    pub devices: u64,
}

/// One captured frame: which lane's radio heard it, plus the byte-
/// exact [`RxFrame`] (arrival stamp, source radio, RSSI/SNR, frame
/// bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneFrame {
    /// Receiving cluster lane.
    pub lane: u32,
    /// The frame as the radio delivered it.
    pub frame: RxFrame,
}

/// A decoded wire/capture record.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRecord {
    /// Stream preamble: world parameters (always first in a `.wcap`).
    Header(WcapHeader),
    /// One captured/ingested frame.
    Frame(LaneFrame),
    /// Virtual-time watermark: run every poll due at or before `to`.
    Advance {
        /// The watermark instant.
        to: Instant,
    },
    /// Graceful end of stream: drain, report, exit.
    Shutdown,
}

/// Record-layer protocol errors (a layer above [`CodecError`]: the
/// framing was fine, the body was not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Framing-layer failure.
    Codec(CodecError),
    /// First body byte names no known record type.
    UnknownTag(u8),
    /// Body shorter than the fixed fields its tag requires.
    Truncated {
        /// The record tag.
        tag: u8,
        /// The body length seen.
        len: usize,
    },
    /// Header record without the `WCAP` magic.
    BadMagic,
    /// Header schema version this build does not speak.
    BadVersion(u16),
    /// A frame record with zero frame bytes (no such 802.11 frame).
    EmptyFrame,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "framing: {e}"),
            WireError::UnknownTag(t) => write!(f, "unknown record tag {t:#04x}"),
            WireError::Truncated { tag, len } => {
                write!(f, "record tag {tag:#04x} truncated at {len} bytes")
            }
            WireError::BadMagic => write!(f, "capture header lacks WCAP magic"),
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "capture schema version {v} (this build speaks {WCAP_VERSION})"
                )
            }
            WireError::EmptyFrame => write!(f, "frame record with zero frame bytes"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl WireRecord {
    /// Append this record, length-prefixed, to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        match self {
            WireRecord::Header(h) => {
                body.push(TAG_HEADER);
                body.extend_from_slice(&WCAP_MAGIC);
                body.extend_from_slice(&WCAP_VERSION.to_le_bytes());
                body.extend_from_slice(&h.gateways.to_le_bytes());
                let cap = match h.queue_capacity {
                    Some(c) => c as u64,
                    None => UNBOUNDED,
                };
                body.extend_from_slice(&cap.to_le_bytes());
                body.extend_from_slice(&h.poll_every.as_nanos().to_le_bytes());
                body.extend_from_slice(&h.stale_after.as_nanos().to_le_bytes());
                body.extend_from_slice(&h.horizon.as_nanos().to_le_bytes());
                body.extend_from_slice(&h.seed.to_le_bytes());
                body.extend_from_slice(&h.devices.to_le_bytes());
            }
            WireRecord::Frame(f) => {
                body.push(TAG_FRAME);
                body.extend_from_slice(&f.lane.to_le_bytes());
                body.extend_from_slice(&f.frame.at.as_nanos().to_le_bytes());
                body.extend_from_slice(&f.frame.from.0.to_le_bytes());
                body.extend_from_slice(&f.frame.rssi_dbm.to_bits().to_le_bytes());
                body.extend_from_slice(&f.frame.snr_db.to_bits().to_le_bytes());
                body.extend_from_slice(&f.frame.bytes);
            }
            WireRecord::Advance { to } => {
                body.push(TAG_ADVANCE);
                body.extend_from_slice(&to.as_nanos().to_le_bytes());
            }
            WireRecord::Shutdown => body.push(TAG_SHUTDOWN),
        }
        encode_record(out, &body);
    }

    /// Decode one record body (as produced by
    /// [`FrameDecoder::next_record`](crate::codec::FrameDecoder::next_record)).
    pub fn decode(body: &[u8]) -> Result<WireRecord, WireError> {
        let (&tag, rest) = body.split_first().expect("codec rejects empty records");
        match tag {
            TAG_HEADER => {
                const FIXED: usize = 4 + 2 + 4 + 8 * 6;
                if rest.len() < FIXED {
                    return Err(WireError::Truncated {
                        tag,
                        len: body.len(),
                    });
                }
                if rest[..4] != WCAP_MAGIC {
                    return Err(WireError::BadMagic);
                }
                let version = u16::from_le_bytes([rest[4], rest[5]]);
                if version != WCAP_VERSION {
                    return Err(WireError::BadVersion(version));
                }
                let gateways = u32::from_le_bytes(rest[6..10].try_into().unwrap());
                let cap = read_u64(rest, 10);
                Ok(WireRecord::Header(WcapHeader {
                    gateways,
                    queue_capacity: (cap != UNBOUNDED).then_some(cap as usize),
                    poll_every: Duration::from_nanos(read_u64(rest, 18)),
                    stale_after: Duration::from_nanos(read_u64(rest, 26)),
                    horizon: Instant::from_nanos(read_u64(rest, 34)),
                    seed: read_u64(rest, 42),
                    devices: read_u64(rest, 50),
                }))
            }
            TAG_FRAME => {
                const FIXED: usize = 4 + 8 + 4 + 8 + 8;
                if rest.len() < FIXED {
                    return Err(WireError::Truncated {
                        tag,
                        len: body.len(),
                    });
                }
                let bytes = &rest[FIXED..];
                if bytes.is_empty() {
                    return Err(WireError::EmptyFrame);
                }
                Ok(WireRecord::Frame(LaneFrame {
                    lane: u32::from_le_bytes(rest[..4].try_into().unwrap()),
                    frame: RxFrame {
                        at: Instant::from_nanos(read_u64(rest, 4)),
                        from: RadioId(u32::from_le_bytes(rest[12..16].try_into().unwrap())),
                        rssi_dbm: f64::from_bits(read_u64(rest, 16)),
                        snr_db: f64::from_bits(read_u64(rest, 24)),
                        bytes: Arc::from(bytes),
                    },
                }))
            }
            TAG_ADVANCE => {
                if rest.len() < 8 {
                    return Err(WireError::Truncated {
                        tag,
                        len: body.len(),
                    });
                }
                Ok(WireRecord::Advance {
                    to: Instant::from_nanos(read_u64(rest, 0)),
                })
            }
            TAG_SHUTDOWN => Ok(WireRecord::Shutdown),
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FrameDecoder;

    fn sample_header() -> WcapHeader {
        WcapHeader {
            gateways: 3,
            queue_capacity: Some(1024),
            poll_every: Duration::from_secs(5),
            stale_after: Duration::from_secs(120),
            horizon: Instant::from_secs(330),
            seed: 42,
            devices: 150,
        }
    }

    #[test]
    fn records_round_trip() {
        let frame = LaneFrame {
            lane: 2,
            frame: RxFrame {
                at: Instant::from_nanos(123_456_789),
                from: RadioId(9),
                rssi_dbm: -61.25,
                snr_db: 18.5,
                bytes: Arc::from(&b"\xde\xad\xbe\xef"[..]),
            },
        };
        let records = vec![
            WireRecord::Header(sample_header()),
            WireRecord::Frame(frame),
            WireRecord::Advance {
                to: Instant::from_secs(330),
            },
            WireRecord::Shutdown,
        ];
        let mut wire = Vec::new();
        for r in &records {
            r.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut got = Vec::new();
        while let Some(body) = dec.next_record().unwrap() {
            got.push(WireRecord::decode(&body).unwrap());
        }
        assert_eq!(got, records);
    }

    #[test]
    fn unbounded_queue_round_trips() {
        let mut h = sample_header();
        h.queue_capacity = None;
        let mut wire = Vec::new();
        WireRecord::Header(h.clone()).encode(&mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let body = dec.next_record().unwrap().unwrap();
        assert_eq!(WireRecord::decode(&body).unwrap(), WireRecord::Header(h));
    }

    #[test]
    fn bad_bodies_are_typed_errors() {
        assert_eq!(
            WireRecord::decode(&[0x7f]),
            Err(WireError::UnknownTag(0x7f))
        );
        assert_eq!(
            WireRecord::decode(&[TAG_ADVANCE, 1, 2]),
            Err(WireError::Truncated {
                tag: TAG_ADVANCE,
                len: 3
            })
        );
        // A frame with the fixed fields but no frame bytes.
        let mut body = vec![TAG_FRAME];
        body.extend_from_slice(&[0u8; 32]);
        assert_eq!(WireRecord::decode(&body), Err(WireError::EmptyFrame));
        // Header with wrong magic.
        let mut body = vec![TAG_HEADER];
        body.extend_from_slice(b"NOPE");
        body.extend_from_slice(&[0u8; 54]);
        assert_eq!(WireRecord::decode(&body), Err(WireError::BadMagic));
        // Header with a future schema version.
        let mut body = vec![TAG_HEADER];
        body.extend_from_slice(&WCAP_MAGIC);
        body.extend_from_slice(&7u16.to_le_bytes());
        body.extend_from_slice(&[0u8; 52]);
        assert_eq!(WireRecord::decode(&body), Err(WireError::BadVersion(7)));
    }
}
