//! The deterministic heart of `wile-gatewayd`: a pure, IO-free state
//! machine that accepts byte-exact [`RxFrame`]s stamped into lanes and
//! drives them through the identical `GatewayIngest → ReportQueue →
//! ClusterAggregator` pipeline the in-process scenarios run.
//!
//! [`GatewaydCore`] never reads a clock, a socket, or a file. Time
//! advances only through the frames' own arrival stamps and explicit
//! [`advance_to`](GatewaydCore::advance_to) watermarks; the daemon
//! shell owns all IO and feeds the core. That split is what makes
//! replay exact: the same record stream produces the same poll train,
//! the same aggregation batches, the same deliveries, the same digest —
//! byte for byte, asserted against the in-process cluster by
//! `tests/gatewayd_diff.rs`.
//!
//! The poll train mirrors the metro scenario's `ClusterSink` precisely:
//! the first poll is due at `ZERO + poll_every` unconditionally, each
//! poll at `t` reschedules `(t + poll_every).min(horizon)` while
//! `t < horizon`, and the final poll lands exactly on the horizon.
//! Within a poll the order is: drain staged lanes → fold deliveries
//! into the digest → retain → evict stale devices. Any deviation would
//! shift an aggregation batch boundary and change an election.

use crate::wire::WcapHeader;
use std::collections::VecDeque;
use std::fmt;
use wile::monitor::{Gateway, GatewayStats};
use wile_cluster::{ClusterConfig, ClusterDelivery, ClusterStats, GatewayCluster, RoamingConfig};
use wile_radio::medium::{RadioId, RxFrame};
use wile_radio::time::{Duration, Instant};
use wile_scenarios::metro::{fold_delivery, MetroReport, FNV_OFFSET};
use wile_sim::ingest::GatewayIngest;
use wile_telemetry::{LabelValue, Registry};

/// World parameters the core needs to reproduce a scenario's pipeline.
#[derive(Debug, Clone)]
pub struct GatewaydConfig {
    /// Cluster lane count.
    pub gateways: usize,
    /// Per-lane report queue bound (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// Poll cadence.
    pub poll_every: Duration,
    /// Stale-device eviction horizon.
    pub stale_after: Duration,
    /// Final poll instant.
    pub horizon: Instant,
    /// Retain the full delivery stream in the report (differential
    /// tests); otherwise compare digests.
    pub keep_deliveries: bool,
    /// Aggregation worker threads (results are identical at any
    /// setting; the daemon defaults to 1).
    pub workers: usize,
    /// Record a [`PollRecord`] per poll for the JSONL run trace.
    pub log_polls: bool,
}

impl GatewaydConfig {
    /// Build from a capture/stream header (daemon defaults: one
    /// worker, digests only, no poll log).
    pub fn from_header(h: &WcapHeader) -> Self {
        GatewaydConfig {
            gateways: h.gateways as usize,
            queue_capacity: h.queue_capacity,
            poll_every: h.poll_every,
            stale_after: h.stale_after,
            horizon: h.horizon,
            keep_deliveries: false,
            workers: 1,
            log_polls: false,
        }
    }
}

/// Why the core refused a frame. Every rejection is counted in the
/// ledger (`rejected`) — a refused frame is accounted, not lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// Lane index out of range for this cluster.
    LaneOutOfRange {
        /// The offered lane.
        lane: u32,
        /// Configured lane count.
        gateways: usize,
    },
    /// The frame is stamped at or before an already-executed poll: it
    /// can never join the window it belonged to, and ingesting it late
    /// would silently shift a later aggregation batch.
    Stale {
        /// The frame's stamp.
        at: Instant,
        /// The last executed poll.
        polled: Instant,
    },
    /// The frame is stamped earlier than its lane's previous frame;
    /// staged lanes must be non-decreasing (capture order is the
    /// medium's arrival order, which is).
    OutOfOrder {
        /// The frame's stamp.
        at: Instant,
        /// The lane's previous stamp.
        prev: Instant,
    },
    /// The final poll has run; the run is sealed.
    Finished,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::LaneOutOfRange { lane, gateways } => {
                write!(f, "lane {lane} out of range (cluster has {gateways})")
            }
            IngestError::Stale { at, polled } => write!(
                f,
                "frame at {}ns is at or before the executed poll at {}ns",
                at.as_nanos(),
                polled.as_nanos()
            ),
            IngestError::OutOfOrder { at, prev } => write!(
                f,
                "frame at {}ns regresses behind its lane's previous frame at {}ns",
                at.as_nanos(),
                prev.as_nanos()
            ),
            IngestError::Finished => write!(f, "run is sealed (final poll has executed)"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One executed poll, for the JSONL run trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollRecord {
    /// Poll instant.
    pub at: Instant,
    /// Deliveries this poll produced.
    pub delivered: u64,
    /// Devices evicted as stale at this poll.
    pub evicted: u64,
}

/// Everything a finished run measured, shaped to compare against a
/// [`MetroReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatewaydReport {
    /// Cluster lane count.
    pub gateways: usize,
    /// Frames offered to the core (accepted + rejected).
    pub frames_in: u64,
    /// Frames refused with a typed [`IngestError`].
    pub rejected: u64,
    /// Frames accepted but stamped past the horizon — staged and never
    /// polled.
    pub late: u64,
    /// Polls executed.
    pub polls: u64,
    /// Full cluster counters.
    pub stats: ClusterStats,
    /// Per-lane gateway pipeline counters (frame-level ledger).
    pub gateway_stats: Vec<GatewayStats>,
    /// The delivery stream (empty unless `keep_deliveries`).
    pub deliveries: Vec<ClusterDelivery>,
    /// FNV-1a digest over the full delivery stream.
    pub delivery_digest: u64,
    /// Devices evicted as stale (in eviction order, as metro reports
    /// them).
    pub evicted: Vec<u32>,
    /// Poll records not yet drained via
    /// [`GatewaydCore::take_poll_log`] (empty unless
    /// [`GatewaydConfig::log_polls`]).
    pub poll_log: Vec<PollRecord>,
    /// The final poll instant (== configured horizon).
    pub sim_end: Instant,
}

impl GatewaydReport {
    /// Byte-identity against an in-process metro run: cluster counters,
    /// delivery stream, digest, and evictions all equal. (`sim_end` is
    /// not compared — the kernel's end time includes device wakes the
    /// capture does not replay; medium-side fields like `peak_live_tx`
    /// have no daemon counterpart.)
    pub fn matches_metro(&self, m: &MetroReport) -> bool {
        self.gateways == m.gateways
            && self.stats == m.stats
            && self.deliveries == m.deliveries
            && self.delivery_digest == m.delivery_digest
            && self.evicted == m.evicted
    }

    /// The frame-level conservation ledger: every frame offered to the
    /// core was rejected with a typed error, staged past the horizon,
    /// or seen by a lane's gateway pipeline. Nothing vanishes.
    pub fn frames_ledger_closes(&self) -> bool {
        let seen: u64 = self.gateway_stats.iter().map(|g| g.frames_seen).sum();
        self.frames_in == self.rejected + self.late + seen
    }

    /// Record the finished run's counters into a telemetry registry
    /// with the same key vocabulary the live cluster uses (the lane
    /// counters the report retains), plus the daemon-front-door ledger.
    /// Serves the post-run scrape after the core has been consumed.
    pub fn record_telemetry(&self, reg: &mut Registry) {
        for (i, lane) in self.stats.lanes.iter().enumerate() {
            let labels = [("lane", LabelValue::from(i))];
            reg.counter_set("cluster.lane.hears", &labels, lane.hears);
            reg.counter_set("cluster.lane.queue_drops", &labels, lane.queue_drops);
            reg.counter_set("cluster.lane.wins", &labels, lane.wins);
            reg.counter_set("cluster.lane.suppressions", &labels, lane.suppressions);
            reg.counter_set("cluster.lane.shed", &labels, lane.shed);
            reg.gauge_set(
                "cluster.lane.queue.high_water",
                &labels,
                lane.queue_high_water as i64,
            );
        }
        reg.counter_set("cluster.delivered", &[], self.stats.delivered);
        reg.counter_set("cluster.handoffs", &[], self.stats.handoffs);
        reg.counter_set("cluster.evicted", &[], self.stats.evicted);
        reg.gauge_set(
            "cluster.devices_tracked",
            &[],
            self.stats.devices_tracked as i64,
        );
        reg.counter_set("gatewayd.frames_in", &[], self.frames_in);
        reg.counter_set("gatewayd.rejected", &[], self.rejected);
        reg.counter_set("gatewayd.late", &[], self.late);
        reg.counter_set("gatewayd.polls", &[], self.polls);
    }
}

/// The deterministic replay/ingest core. See the module docs for the
/// exactness contract.
pub struct GatewaydCore {
    cfg: GatewaydConfig,
    cluster: GatewayCluster,
    /// Per-lane staged frames, non-decreasing by stamp; a poll at `t`
    /// consumes every staged frame with `at <= t`.
    staged: Vec<VecDeque<RxFrame>>,
    /// Per-lane last staged stamp (monotonicity guard).
    last_at: Vec<Option<Instant>>,
    /// Last executed poll.
    polled: Option<Instant>,
    /// Next due poll.
    next_poll: Instant,
    finished: bool,
    digest: u64,
    deliveries: Vec<ClusterDelivery>,
    evicted: Vec<u32>,
    poll_log: Vec<PollRecord>,
    frames_in: u64,
    rejected: u64,
    polls: u64,
}

impl GatewaydCore {
    /// A fresh core: empty cluster lanes, first poll due at
    /// `ZERO + poll_every` (the metro schedule, unconditionally — even
    /// a degenerate horizon gets its one poll).
    pub fn new(cfg: GatewaydConfig) -> Self {
        assert!(cfg.gateways >= 1, "a cluster needs at least one lane");
        assert!(cfg.workers >= 1);
        let mut cluster = GatewayCluster::new(ClusterConfig {
            queue_capacity: cfg.queue_capacity,
            roaming: RoamingConfig::default(),
            shards: 8,
            stale_after: cfg.stale_after,
            ..Default::default()
        });
        // Lane radios are nominal: the daemon never touches a medium,
        // but `GatewayIngest` carries its radio id, and lane order is
        // what the capture's lane indices refer to.
        for i in 0..cfg.gateways {
            cluster.add_gateway(GatewayIngest::new(RadioId(i as u32), Gateway::new()));
        }
        let next_poll = Instant::ZERO + cfg.poll_every;
        GatewaydCore {
            staged: (0..cfg.gateways).map(|_| VecDeque::new()).collect(),
            last_at: vec![None; cfg.gateways],
            polled: None,
            next_poll,
            finished: false,
            digest: FNV_OFFSET,
            deliveries: Vec::new(),
            evicted: Vec::new(),
            poll_log: Vec::new(),
            frames_in: 0,
            rejected: 0,
            polls: 0,
            cfg,
            cluster,
        }
    }

    /// The configuration this core runs.
    pub fn config(&self) -> &GatewaydConfig {
        &self.cfg
    }

    /// Whether the final poll has executed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Frames offered so far (accepted + rejected).
    pub fn frames_in(&self) -> u64 {
        self.frames_in
    }

    /// Frames refused so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Frames currently staged (accepted, not yet polled).
    pub fn staged_frames(&self) -> usize {
        self.staged.iter().map(|q| q.len()).sum()
    }

    /// Running FNV-1a digest over deliveries so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Polls executed so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Drain the accumulated poll log (empty unless
    /// [`GatewaydConfig::log_polls`]).
    pub fn take_poll_log(&mut self) -> Vec<PollRecord> {
        std::mem::take(&mut self.poll_log)
    }

    /// Offer one stamped frame. The stamp is a watermark: every poll
    /// due strictly before it runs first (capture order is poll-major,
    /// so by the time a frame stamped past a poll boundary arrives,
    /// every frame belonging to that window has been offered).
    /// Deliveries produced by those polls land in `out`. A rejected
    /// frame is counted and reported — never silently dropped.
    pub fn offer(
        &mut self,
        lane: u32,
        frame: RxFrame,
        out: &mut Vec<ClusterDelivery>,
    ) -> Result<(), IngestError> {
        self.frames_in += 1;
        if self.finished {
            self.rejected += 1;
            return Err(IngestError::Finished);
        }
        if lane as usize >= self.cfg.gateways {
            self.rejected += 1;
            return Err(IngestError::LaneOutOfRange {
                lane,
                gateways: self.cfg.gateways,
            });
        }
        // A frame stamped exactly on the next poll boundary belongs to
        // that poll (drains are inclusive), so only strictly-later
        // stamps release it.
        while !self.finished && self.next_poll < frame.at {
            self.run_poll(out);
        }
        if let Some(p) = self.polled {
            if frame.at <= p {
                self.rejected += 1;
                return Err(IngestError::Stale {
                    at: frame.at,
                    polled: p,
                });
            }
        }
        let lane = lane as usize;
        if let Some(prev) = self.last_at[lane] {
            if frame.at < prev {
                self.rejected += 1;
                return Err(IngestError::OutOfOrder { at: frame.at, prev });
            }
        }
        self.last_at[lane] = Some(frame.at);
        self.staged[lane].push_back(frame);
        Ok(())
    }

    /// Run every poll due at or before `to` (an explicit watermark —
    /// the wire `Advance` record, or the daemon's end-of-stream drain).
    pub fn advance_to(&mut self, to: Instant, out: &mut Vec<ClusterDelivery>) {
        while !self.finished && self.next_poll <= to {
            self.run_poll(out);
        }
    }

    /// The ISSUE-shaped convenience step: offer a batch of stamped
    /// frames, then advance to `now`. Returns the deliveries the step
    /// produced and the per-frame rejections (paired with the input
    /// index).
    pub fn step(
        &mut self,
        now: Instant,
        frames: impl IntoIterator<Item = (u32, RxFrame)>,
    ) -> (Vec<ClusterDelivery>, Vec<(usize, IngestError)>) {
        let mut out = Vec::new();
        let mut errs = Vec::new();
        for (i, (lane, f)) in frames.into_iter().enumerate() {
            if let Err(e) = self.offer(lane, f, &mut out) {
                errs.push((i, e));
            }
        }
        self.advance_to(now, &mut out);
        (out, errs)
    }

    /// Seal the run: execute every remaining poll through the horizon
    /// (the final one lands exactly on it), then produce the report.
    /// Frames still staged afterwards are stamped past the horizon and
    /// counted as `late`.
    pub fn finish(mut self, out: &mut Vec<ClusterDelivery>) -> GatewaydReport {
        while !self.finished {
            self.run_poll(out);
        }
        let late = self.staged_frames() as u64;
        let stats = self.cluster.stats();
        assert!(
            stats.conserves_offered_load(),
            "delivered + suppressions + drops must equal hears: {stats:?}"
        );
        let gateway_stats: Vec<GatewayStats> = (0..self.cfg.gateways)
            .map(|i| self.cluster.ingest(i).gateway().stats())
            .collect();
        let report = GatewaydReport {
            gateways: self.cfg.gateways,
            frames_in: self.frames_in,
            rejected: self.rejected,
            late,
            polls: self.polls,
            stats,
            gateway_stats,
            deliveries: self.deliveries,
            delivery_digest: self.digest,
            evicted: self.evicted,
            poll_log: self.poll_log,
            sim_end: self.polled.expect("finish() executes at least one poll"),
        };
        assert!(
            report.frames_ledger_closes(),
            "frame ledger must close: {} in != {} rejected + {} late + seen",
            report.frames_in,
            report.rejected,
            report.late
        );
        report
    }

    /// Record the pipeline's counters into a telemetry registry: the
    /// full cluster/gateway set plus the daemon-front-door ledger.
    pub fn record_telemetry(&self, reg: &mut Registry) {
        self.cluster.record_telemetry(reg);
        reg.counter_set("gatewayd.frames_in", &[], self.frames_in);
        reg.counter_set("gatewayd.rejected", &[], self.rejected);
        reg.counter_set("gatewayd.polls", &[], self.polls);
        reg.gauge_set("gatewayd.staged", &[], self.staged_frames() as i64);
    }

    /// One poll, mirroring metro's `ClusterSink::on_event` order:
    /// drain → fold digest → retain → evict stale.
    fn run_poll(&mut self, out: &mut Vec<ClusterDelivery>) {
        let t = self.next_poll;
        let got = self
            .cluster
            .poll_staged(&mut self.staged, None, t, self.cfg.workers);
        for d in &got {
            fold_delivery(&mut self.digest, d);
        }
        if self.cfg.keep_deliveries {
            self.deliveries.extend(got.iter().cloned());
        }
        let evicted = self.cluster.evict_stale(t);
        if self.cfg.log_polls {
            self.poll_log.push(PollRecord {
                at: t,
                delivered: got.len() as u64,
                evicted: evicted.len() as u64,
            });
        }
        out.extend(got);
        self.evicted.extend(evicted);
        self.polls += 1;
        self.polled = Some(t);
        if t < self.cfg.horizon {
            self.next_poll = (t + self.cfg.poll_every).min(self.cfg.horizon);
        } else {
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cfg() -> GatewaydConfig {
        GatewaydConfig {
            gateways: 2,
            queue_capacity: Some(64),
            poll_every: Duration::from_secs(5),
            stale_after: Duration::from_secs(600),
            horizon: Instant::from_secs(12),
            keep_deliveries: true,
            workers: 1,
            log_polls: true,
        }
    }

    fn frame(at_s: u64) -> RxFrame {
        RxFrame {
            at: Instant::from_secs(at_s),
            from: RadioId(99),
            rssi_dbm: -50.0,
            snr_db: 20.0,
            bytes: Arc::from(&b"\x00"[..]),
        }
    }

    #[test]
    fn poll_train_matches_metro_schedule() {
        // poll_every=5s, horizon=12s → polls at 5, 10, 12 (final poll
        // clamped to the horizon exactly).
        let mut core = GatewaydCore::new(cfg());
        let mut out = Vec::new();
        let report = {
            core.advance_to(Instant::from_secs(100), &mut out);
            core.finish(&mut out)
        };
        assert_eq!(report.polls, 3);
        assert_eq!(report.sim_end, Instant::from_secs(12));
    }

    #[test]
    fn rejections_are_typed_and_counted() {
        let mut core = GatewaydCore::new(cfg());
        let mut out = Vec::new();
        assert_eq!(
            core.offer(7, frame(1), &mut out),
            Err(IngestError::LaneOutOfRange {
                lane: 7,
                gateways: 2
            })
        );
        // A frame stamped past the first poll boundary executes it...
        core.offer(0, frame(6), &mut out).unwrap();
        assert_eq!(core.polls(), 1);
        // ...after which a frame at or before that poll is stale.
        assert_eq!(
            core.offer(0, frame(4), &mut out),
            Err(IngestError::Stale {
                at: Instant::from_secs(4),
                polled: Instant::from_secs(5),
            })
        );
        // Lane regression is refused.
        core.offer(0, frame(8), &mut out).unwrap();
        assert_eq!(
            core.offer(0, frame(7), &mut out),
            Err(IngestError::OutOfOrder {
                at: Instant::from_secs(7),
                prev: Instant::from_secs(8),
            })
        );
        let report = core.finish(&mut out);
        assert_eq!(report.frames_in, 5);
        assert_eq!(report.rejected, 3);
        assert!(report.frames_ledger_closes());
    }

    #[test]
    fn late_frames_are_ledgered() {
        let mut core = GatewaydCore::new(cfg());
        let mut out = Vec::new();
        // Stamped past the horizon: staged, never polled, counted late.
        core.offer(1, frame(50), &mut out).unwrap();
        let report = core.finish(&mut out);
        assert_eq!(report.late, 1);
        assert!(report.frames_ledger_closes());
    }
}
