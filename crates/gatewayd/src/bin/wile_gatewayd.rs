//! `wile-gatewayd` — the Wi-LE ingestion daemon.
//!
//! ```text
//! wile-gatewayd [MODE] [OPTIONS]
//!
//! Modes (exactly one):
//!   --listen ADDR       accept framed connections on a TCP address
//!                       (default: 127.0.0.1:7700)
//!   --unix PATH         accept framed connections on a Unix socket
//!   --stdin             read one framed stream from stdin
//!   --replay FILE       replay a .wcap capture file and exit
//!
//! Options:
//!   --scrape ADDR       serve /metrics, /healthz, /report on ADDR
//!   --trace FILE        stream the JSONL run trace to FILE
//!   --workers N         aggregation worker threads (default 1;
//!                       results are identical at any setting)
//!   --keep-deliveries   retain the full delivery stream in the report
//! ```
//!
//! The daemon runs until a `Shutdown` record, end of input, SIGTERM,
//! or SIGINT — then drains every staged frame through the remaining
//! poll train, prints the final report, and exits 0.

use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use wile_gatewayd::daemon::{Daemon, DaemonOptions};
use wile_gatewayd::scrape::ScrapeServer;
use wile_gatewayd::signal;
use wile_gatewayd::GatewaydReport;

enum Mode {
    Listen(String),
    #[cfg(unix)]
    Unix(PathBuf),
    Stdin,
    Replay(PathBuf),
}

struct Args {
    mode: Mode,
    scrape: Option<String>,
    trace: Option<PathBuf>,
    workers: usize,
    keep_deliveries: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: Mode::Listen("127.0.0.1:7700".to_string()),
        scrape: None,
        trace: None,
        workers: 1,
        keep_deliveries: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--listen" => args.mode = Mode::Listen(value("--listen")?),
            #[cfg(unix)]
            "--unix" => args.mode = Mode::Unix(PathBuf::from(value("--unix")?)),
            "--stdin" => args.mode = Mode::Stdin,
            "--replay" => args.mode = Mode::Replay(PathBuf::from(value("--replay")?)),
            "--scrape" => args.scrape = Some(value("--scrape")?),
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--keep-deliveries" => args.keep_deliveries = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: wile-gatewayd [--listen ADDR | --unix PATH | --stdin | --replay FILE]
                     [--scrape ADDR] [--trace FILE] [--workers N] [--keep-deliveries]";

fn print_report(r: &GatewaydReport) {
    println!("wile-gatewayd: run complete");
    println!("  gateways        {}", r.gateways);
    println!(
        "  frames          {} in / {} rejected / {} late",
        r.frames_in, r.rejected, r.late
    );
    println!("  polls           {}", r.polls);
    println!(
        "  delivered       {} ({} handoffs, {} evicted)",
        r.stats.delivered,
        r.stats.handoffs,
        r.evicted.len()
    );
    println!(
        "  queue           {} drops, high water {}",
        r.stats.total_drops(),
        r.stats.max_queue_high_water()
    );
    println!("  digest          {:#018x}", r.delivery_digest);
    println!("  sim end         {} ns", r.sim_end.as_nanos());
    println!(
        "  ledger          {}",
        if r.frames_ledger_closes() {
            "closed (nothing lost)"
        } else {
            "OPEN — accounting violated"
        }
    );
}

fn run(args: Args) -> io::Result<GatewaydReport> {
    let trace: Option<Box<dyn io::Write + Send>> = match &args.trace {
        Some(p) => Some(Box::new(io::BufWriter::new(std::fs::File::create(p)?))),
        None => None,
    };
    let opts = DaemonOptions {
        workers: args.workers,
        keep_deliveries: args.keep_deliveries,
        config: None,
    };
    let mut daemon = Daemon::new(opts, trace)?;
    let scrape = match &args.scrape {
        Some(addr) => {
            let s = ScrapeServer::start(addr, daemon.state())?;
            eprintln!("wile-gatewayd: scrape endpoint on http://{}", s.addr());
            Some(s)
        }
        None => None,
    };
    let report = match args.mode {
        Mode::Listen(addr) => {
            let listener = TcpListener::bind(&addr)?;
            eprintln!("wile-gatewayd: listening on {}", listener.local_addr()?);
            daemon.serve_tcp(listener)
        }
        #[cfg(unix)]
        Mode::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)?;
            eprintln!("wile-gatewayd: listening on {}", path.display());
            let report = daemon.serve_unix(listener);
            let _ = std::fs::remove_file(&path);
            report
        }
        Mode::Stdin => daemon.serve_reader(io::stdin().lock()),
        Mode::Replay(path) => daemon.serve_path(&path),
    }?;
    if let Some(s) = scrape {
        s.shutdown();
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("wile-gatewayd: {e}");
            }
            eprintln!("{USAGE}");
            return if e == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    signal::install_stop_handler();
    match run(args) {
        Ok(report) => {
            print_report(&report);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wile-gatewayd: {e}");
            ExitCode::FAILURE
        }
    }
}
