//! `wile-feeder` — stream a `.wcap` capture into a running
//! `wile-gatewayd`.
//!
//! ```text
//! wile-feeder --capture FILE (--connect ADDR | --stdout)
//!             [--wall-clock SPEEDUP]
//!
//!   --capture FILE       the .wcap capture to stream (required)
//!   --connect ADDR       TCP address of a listening wile-gatewayd
//!   --stdout             write the framed stream to stdout (pipe
//!                        mode: wile-feeder ... | wile-gatewayd --stdin)
//!   --wall-clock SPEEDUP pace frames by their simulated gaps divided
//!                        by SPEEDUP (default: max rate)
//! ```
//!
//! The feeder appends an `Advance` watermark to the capture's horizon
//! and a `Shutdown` record, so the receiving daemon drains and reports
//! when the stream ends.

use std::io::{self, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use wile_gatewayd::feeder::{feed_capture, Pace};

struct Args {
    capture: PathBuf,
    connect: Option<String>,
    stdout: bool,
    pace: Pace,
}

fn parse_args() -> Result<Args, String> {
    let mut capture = None;
    let mut connect = None;
    let mut stdout = false;
    let mut pace = Pace::MaxRate;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--capture" => capture = Some(PathBuf::from(value("--capture")?)),
            "--connect" => connect = Some(value("--connect")?),
            "--stdout" => stdout = true,
            "--wall-clock" => {
                let speedup: f64 = value("--wall-clock")?
                    .parse()
                    .map_err(|e| format!("--wall-clock: {e}"))?;
                if speedup <= 0.0 {
                    return Err("--wall-clock requires a positive speedup".to_string());
                }
                pace = Pace::WallClock { speedup };
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let capture = capture.ok_or("--capture is required")?;
    if connect.is_some() == stdout {
        return Err("pick exactly one of --connect ADDR or --stdout".to_string());
    }
    Ok(Args {
        capture,
        connect,
        stdout,
        pace,
    })
}

const USAGE: &str =
    "usage: wile-feeder --capture FILE (--connect ADDR | --stdout) [--wall-clock SPEEDUP]";

fn run(args: Args) -> io::Result<()> {
    let bytes = std::fs::read(&args.capture)?;
    let start = std::time::Instant::now();
    let summary = if args.stdout {
        let out = io::stdout();
        let mut lock = io::BufWriter::new(out.lock());
        let s = feed_capture(&bytes, &mut lock, args.pace)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        lock.flush()?;
        s
    } else {
        let addr = args.connect.as_deref().expect("checked in parse");
        let mut stream = io::BufWriter::new(TcpStream::connect(addr)?);
        let s = feed_capture(&bytes, &mut stream, args.pace)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        stream.flush()?;
        s
    };
    let elapsed = start.elapsed();
    let rate = if elapsed.as_secs_f64() > 0.0 {
        summary.frames as f64 / elapsed.as_secs_f64()
    } else {
        f64::INFINITY
    };
    eprintln!(
        "wile-feeder: {} frames, {} bytes in {:.3}s ({:.0} frames/s)",
        summary.frames,
        summary.bytes,
        elapsed.as_secs_f64(),
        rate
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("wile-feeder: {e}");
            }
            eprintln!("{USAGE}");
            return if e == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wile-feeder: {e}");
            ExitCode::FAILURE
        }
    }
}
