//! The telemetry scrape endpoint: a hand-rolled, dependency-free
//! HTTP/1.0 responder on its own thread.
//!
//! Three routes, all read-only over the shared [`DaemonState`]:
//!
//! * `GET /metrics`  — the telemetry registry rendered as the standard
//!   text scrape (`counter`/`gauge`/`hist` lines), live while the run
//!   is in flight and final after the drain;
//! * `GET /healthz`  — liveness probe, `ok`;
//! * `GET /report`   — compact JSON status (phase, ledger counters,
//!   digest once finished).
//!
//! Observation only: the endpoint never mutates the core, so scraping
//! mid-run cannot perturb the deterministic pipeline.

use crate::daemon::DaemonState;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

/// A running scrape server; drop-in handle for shutdown.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serve scrapes of `state` on a background thread.
    pub fn start(addr: &str, state: Arc<Mutex<DaemonState>>) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gatewayd-scrape".into())
            .spawn(move || serve(listener, state, stop2))?;
        Ok(ScrapeServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serving thread and join it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve(listener: TcpListener, state: Arc<Mutex<DaemonState>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Best-effort: a failed scrape never takes the daemon
                // down.
                let _ = respond(stream, &state);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(StdDuration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn respond(mut stream: TcpStream, state: &Arc<Mutex<DaemonState>>) -> io::Result<()> {
    stream.set_read_timeout(Some(StdDuration::from_millis(500)))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            state.lock().unwrap().render_metrics(),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/report" => (
            "200 OK",
            "application/json",
            state.lock().unwrap().status_json(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request head and return the path of the
/// request line (`GET <path> HTTP/1.x`).
fn read_request_path(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    let line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let _method = parts.next().unwrap_or("");
    Ok(parts.next().unwrap_or("/").to_string())
}
