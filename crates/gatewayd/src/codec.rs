//! Length-prefixed record framing for the gatewayd wire protocol and
//! the `.wcap` capture format.
//!
//! A record on the wire is a little-endian `u32` byte length followed
//! by that many payload bytes. The length must be in
//! `1..=MAX_RECORD_LEN`: zero-length records and oversize records are
//! protocol errors, rejected with typed [`CodecError`]s — never a
//! panic, never a silent skip (a desynchronized length prefix would
//! otherwise misparse every following byte).
//!
//! [`FrameDecoder`] is the incremental half: bytes arrive in whatever
//! chunks the transport hands over (a TCP read can split a record
//! anywhere, including mid-length-prefix) and complete records come
//! out. Torn reads simply resume on the next [`push`](FrameDecoder::push);
//! the property tests in `tests/codec_props.rs` drive arbitrary
//! payloads through arbitrary chunkings and require byte identity.

use std::fmt;

/// Upper bound on one record's payload, bytes. Far above any 802.11
/// beacon this workspace emits (the MTU-bounded frame is < 2.5 KiB);
/// the bound exists so a corrupt or adversarial length prefix cannot
/// make the decoder buffer gigabytes.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Framing-layer protocol errors. All are fatal for the stream: after
/// a bad length prefix there is no way to resynchronize, so the
/// decoder latches the error and the transport must drop the
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// A record declared a zero-byte payload.
    ZeroLength,
    /// A record declared a payload larger than [`MAX_RECORD_LEN`].
    Oversize {
        /// The declared length.
        len: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::ZeroLength => write!(f, "zero-length record"),
            CodecError::Oversize { len } => {
                write!(f, "record of {len} bytes exceeds max {MAX_RECORD_LEN}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append one length-prefixed record to `out`.
///
/// # Panics
/// If `payload` is empty or longer than [`MAX_RECORD_LEN`] — encoders
/// own their payloads, so an invalid one is a caller bug, not a
/// runtime condition.
pub fn encode_record(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(!payload.is_empty(), "zero-length record");
    assert!(
        payload.len() <= MAX_RECORD_LEN,
        "record of {} bytes exceeds max {MAX_RECORD_LEN}",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental record decoder: push transport chunks in, pull complete
/// records out. Partial records (torn anywhere, including inside the
/// length prefix) are buffered and resume on the next push.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed; compacted lazily.
    read: usize,
    /// A framing error is unrecoverable — latch it so every subsequent
    /// call reports the same condition.
    poisoned: Option<CodecError>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Buffer a transport chunk. Chunks may split records anywhere.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        // Compact before growing: keeps the buffer bounded by one
        // in-flight record plus one transport chunk.
        if self.read > 0 && self.read >= self.buf.len() / 2 {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pull the next complete record, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes" (a torn record resumes on the
    /// next [`push`](FrameDecoder::push)); `Err` means the stream is
    /// desynchronized beyond recovery and stays latched.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        let pending = &self.buf[self.read..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len == 0 {
            self.poisoned = Some(CodecError::ZeroLength);
            return Err(CodecError::ZeroLength);
        }
        if len > MAX_RECORD_LEN {
            let e = CodecError::Oversize { len };
            self.poisoned = Some(e);
            return Err(e);
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let record = pending[4..4 + len].to_vec();
        self.read += 4 + len;
        Ok(Some(record))
    }

    /// Bytes buffered but not yet consumed as records.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether a framing error has latched.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_records_across_torn_chunks() {
        let mut wire = Vec::new();
        encode_record(&mut wire, b"alpha");
        encode_record(&mut wire, &[0u8; 300]);
        encode_record(&mut wire, b"z");
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        // One byte at a time: every possible tear point.
        for &b in &wire {
            dec.push(&[b]);
            while let Some(r) = dec.next_record().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"alpha");
        assert_eq!(got[1], vec![0u8; 300]);
        assert_eq!(got[2], b"z");
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn zero_and_oversize_lengths_are_typed_errors_and_latch() {
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_le_bytes());
        assert_eq!(dec.next_record(), Err(CodecError::ZeroLength));
        assert_eq!(dec.next_record(), Err(CodecError::ZeroLength));
        assert!(dec.is_poisoned());

        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_RECORD_LEN as u32 + 1).to_le_bytes());
        assert_eq!(
            dec.next_record(),
            Err(CodecError::Oversize {
                len: MAX_RECORD_LEN + 1
            })
        );
    }
}
