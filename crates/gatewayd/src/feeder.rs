//! The load generator: stream a `.wcap` capture into a running daemon.
//!
//! A capture is already a valid wire stream (same codec, same record
//! vocabulary), so feeding is re-encoding record by record — byte-
//! identical to the recording — with an `Advance` watermark to the
//! horizon and a `Shutdown` appended so the daemon drains and reports.
//!
//! Two paces:
//!
//! * [`Pace::MaxRate`] — as fast as the transport accepts; this is the
//!   sustained-throughput benchmark mode.
//! * [`Pace::WallClock`] — sleep out the simulated inter-frame gaps
//!   (divided by `speedup`), approximating the live deployment's
//!   arrival process. Pacing changes *when* bytes move, never what
//!   the daemon computes: the report is stamp-driven and identical
//!   under either pace.

use crate::capture::ReplayError;
use crate::codec::FrameDecoder;
use crate::wire::WireRecord;
use std::io::Write;
use wile_radio::time::Instant;

/// Feed pacing.
#[derive(Debug, Clone, Copy)]
pub enum Pace {
    /// Stream as fast as the sink accepts.
    MaxRate,
    /// Sleep out simulated inter-frame gaps, compressed by `speedup`
    /// (1.0 = real time, 60.0 = a simulated minute per wall second).
    WallClock {
        /// Simulated-to-wall time compression factor (must be > 0).
        speedup: f64,
    },
}

/// What a feed moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedSummary {
    /// Frame records streamed.
    pub frames: u64,
    /// Total bytes written to the sink (including header, advance,
    /// shutdown).
    pub bytes: u64,
}

/// Stream `capture` into `sink` record by record, append an `Advance`
/// to the capture's horizon and a `Shutdown`, and flush.
pub fn feed_capture(
    capture: &[u8],
    sink: &mut dyn Write,
    pace: Pace,
) -> Result<FeedSummary, ReplayError> {
    let mut dec = FrameDecoder::new();
    dec.push(capture);
    let mut scratch = Vec::new();
    let mut frames = 0u64;
    let mut bytes = 0u64;
    let mut horizon: Option<Instant> = None;
    let mut prev_at: Option<Instant> = None;
    let mut shutdown_sent = false;
    let mut emit =
        |r: &WireRecord, scratch: &mut Vec<u8>, bytes: &mut u64| -> Result<(), ReplayError> {
            scratch.clear();
            r.encode(scratch);
            sink.write_all(scratch)?;
            *bytes += scratch.len() as u64;
            Ok(())
        };
    while let Some(body) = dec.next_record()? {
        let record = WireRecord::decode(&body)?;
        match &record {
            WireRecord::Header(h) => {
                if horizon.is_some() {
                    return Err(ReplayError::UnexpectedHeader);
                }
                horizon = Some(h.horizon);
            }
            WireRecord::Frame(f) => {
                if horizon.is_none() {
                    return Err(ReplayError::MissingHeader);
                }
                if let Pace::WallClock { speedup } = pace {
                    assert!(speedup > 0.0, "speedup must be positive");
                    if let Some(prev) = prev_at {
                        let gap_ns = f.frame.at.as_nanos().saturating_sub(prev.as_nanos());
                        let wall_ns = (gap_ns as f64 / speedup) as u64;
                        if wall_ns > 0 {
                            std::thread::sleep(std::time::Duration::from_nanos(wall_ns));
                        }
                    }
                    prev_at = Some(f.frame.at);
                }
                frames += 1;
            }
            WireRecord::Advance { .. } => {}
            WireRecord::Shutdown => shutdown_sent = true,
        }
        emit(&record, &mut scratch, &mut bytes)?;
        if shutdown_sent {
            break;
        }
    }
    if dec.buffered() > 0 {
        return Err(ReplayError::TrailingBytes(dec.buffered()));
    }
    let horizon = horizon.ok_or(ReplayError::MissingHeader)?;
    if !shutdown_sent {
        emit(
            &WireRecord::Advance { to: horizon },
            &mut scratch,
            &mut bytes,
        )?;
        emit(&WireRecord::Shutdown, &mut scratch, &mut bytes)?;
    }
    sink.flush().map_err(ReplayError::Io)?;
    Ok(FeedSummary { frames, bytes })
}
