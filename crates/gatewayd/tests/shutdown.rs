//! Graceful shutdown: SIGTERM mid-stream must drain the bounded
//! queues, emit the final telemetry report, and exit 0 with every
//! frame accounted in the ledger — nothing silently lost.
//!
//! This drives the real `wile-gatewayd` binary: a TCP session streams
//! the first half of a recorded capture (no `Shutdown` record, the
//! connection stays open), the test waits via the scrape endpoint
//! until the daemon has ingested every sent frame, then delivers
//! SIGTERM and inspects the exit status and final report.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration as StdDuration, Instant as WallInstant};
use wile_gatewayd::capture::{capture_metro, read_capture};
use wile_gatewayd::wire::{LaneFrame, WireRecord};
use wile_scenarios::metro::MetroConfig;

const DEADLINE: StdDuration = StdDuration::from_secs(60);

/// Read stderr lines until the daemon announces an endpoint matching
/// `marker`, returning the `host:port` it bound.
fn wait_for_addr(stderr: &mut impl BufRead, marker: &str) -> String {
    let start = WallInstant::now();
    let mut line = String::new();
    loop {
        assert!(
            start.elapsed() < DEADLINE,
            "daemon never announced {marker:?}"
        );
        line.clear();
        let n = stderr.read_line(&mut line).expect("read daemon stderr");
        assert!(n > 0, "daemon stderr closed before announcing {marker:?}");
        if let Some(rest) = line.trim().split(marker).nth(1) {
            return rest.trim().trim_start_matches("http://").to_string();
        }
    }
}

/// GET `path` from the scrape endpoint, returning the body.
fn scrape(addr: &str, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect scrape");
    write!(conn, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}

fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    let start = WallInstant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > DEADLINE {
            let _ = child.kill();
            panic!("daemon did not exit within {DEADLINE:?} of SIGTERM");
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

#[test]
fn sigterm_mid_stream_drains_reports_and_exits_zero() {
    // A recorded smoke capture gives a realistic stream; send only the
    // first half so the daemon is genuinely mid-run when the signal
    // lands.
    let cfg = MetroConfig::smoke(42);
    let (_, bytes, frames) = capture_metro(&cfg, 1, Vec::new()).expect("capture");
    let (header, lane_frames) = read_capture(&bytes).expect("parse capture");
    let half = (frames / 2).max(1) as usize;

    let mut child = Command::new(env!("CARGO_BIN_EXE_wile-gatewayd"))
        .args(["--listen", "127.0.0.1:0", "--scrape", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wile-gatewayd");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let scrape_addr = wait_for_addr(&mut stderr, "scrape endpoint on");
    let listen_addr = wait_for_addr(&mut stderr, "listening on");

    // Stream header + the first half of the frames; keep the
    // connection open (no Shutdown record) so only the signal can end
    // the run.
    let mut conn = TcpStream::connect(&listen_addr).expect("connect daemon");
    let mut wire = Vec::new();
    WireRecord::Header(header).encode(&mut wire);
    for f in &lane_frames[..half] {
        WireRecord::Frame(LaneFrame {
            lane: f.lane,
            frame: f.frame.clone(),
        })
        .encode(&mut wire);
    }
    conn.write_all(&wire).expect("send half the capture");
    conn.flush().expect("flush");

    // Wait until the daemon's ledger shows every sent frame ingested —
    // then the signal demonstrably lands mid-session with staged state.
    let start = WallInstant::now();
    loop {
        assert!(
            start.elapsed() < DEADLINE,
            "daemon never ingested the {half} sent frames"
        );
        let report = scrape(&scrape_addr, "/report");
        if report.contains(&format!("\"frames_in\":{half}")) {
            assert!(report.contains("\"phase\":\"running\""));
            break;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }

    // SIGTERM, not kill: the contract under test is the drain.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(term.success(), "kill -TERM failed");

    let status = wait_exit(&mut child);
    assert!(
        status.success(),
        "daemon must exit 0 after SIGTERM, got {status:?}"
    );

    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut stdout)
        .expect("read stdout");
    // The final report was emitted, every offered frame is accounted
    // (the binary renders the ledger check), and nothing was rejected —
    // the stream was clean, just truncated.
    assert!(
        stdout.contains("run complete"),
        "final report missing from stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("frames          {half} in / 0 rejected / 0 late")),
        "ledger line mismatch (want {half} in):\n{stdout}"
    );
    assert!(
        stdout.contains("closed (nothing lost)"),
        "frame ledger must close on SIGTERM drain:\n{stdout}"
    );
    drop(conn);
}
