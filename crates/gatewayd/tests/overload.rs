//! Overload accounting: drive the daemon pipeline at 10× its admission
//! rate and require that nothing is lost silently — the extended
//! conservation law `delivered + suppressions + queue_drops + shed ==
//! hears` closes *exactly*, the tail-drop arithmetic is predictable to
//! the frame, and the drop counters and queue high-water gauges surface
//! in the scrape output.

use std::sync::Arc;
use wile::beacon::BeaconTemplate;
use wile::registry::DeviceIdentity;
use wile_dot11::mac::SeqControl;
use wile_gatewayd::daemon::{Daemon, DaemonOptions};
use wile_gatewayd::wire::{LaneFrame, WcapHeader, WireRecord};
use wile_gatewayd::{GatewaydConfig, GatewaydCore};
use wile_radio::medium::{RadioId, RxFrame};
use wile_radio::time::{Duration, Instant};

const LANES: usize = 2;
const QUEUE_CAP: usize = 50;
/// 10× the per-window admission (the lane queue bound).
const PER_WINDOW: usize = QUEUE_CAP * 10;
const WINDOWS: u64 = 4;
const POLL_SECS: u64 = 10;

fn overload_config() -> GatewaydConfig {
    GatewaydConfig {
        gateways: LANES,
        queue_capacity: Some(QUEUE_CAP),
        poll_every: Duration::from_secs(POLL_SECS),
        stale_after: Duration::from_secs(3600),
        horizon: Instant::from_secs(WINDOWS * POLL_SECS),
        keep_deliveries: false,
        workers: 1,
        log_polls: false,
    }
}

/// Synthesize the 10×-admission frame schedule: per lane and poll
/// window, `PER_WINDOW` distinct (device, seq) beacons with strictly
/// increasing arrival stamps inside the window. Every frame is a valid
/// Wi-LE beacon (FCS and all), heard by exactly one lane — so dedup
/// suppressions stay zero and the tail-drop arithmetic is exact.
fn overload_frames() -> Vec<(u32, RxFrame)> {
    let mut frames = Vec::new();
    // One render per frame is wasteful; one template per device, and a
    // device per (lane, slot) so each frame is a unique (device, seq).
    let mut templates: Vec<Vec<BeaconTemplate>> = (0..LANES)
        .map(|lane| {
            (0..PER_WINDOW)
                .map(|slot| {
                    let device_id = (lane * 100_000 + slot + 1) as u32;
                    let identity = DeviceIdentity::new(device_id);
                    BeaconTemplate::new(identity.mac, device_id, 4).expect("small payload")
                })
                .collect()
        })
        .collect();
    let window_ns = Duration::from_secs(POLL_SECS).as_nanos();
    let step_ns = window_ns / (PER_WINDOW as u64 + 1);
    for window in 0..WINDOWS {
        for slot in 0..PER_WINDOW {
            // Strictly inside (window*P, (window+1)*P]: earlier polls
            // never claim these, the window's own poll takes them all.
            let at = Instant::from_nanos(window * window_ns + (slot as u64 + 1) * step_ns);
            for (lane, lane_templates) in templates.iter_mut().enumerate() {
                let seq = window as u16;
                let bytes = lane_templates[slot].render(
                    seq,
                    SeqControl::new(seq & 0x0FFF, 0),
                    &(slot as u32).to_le_bytes(),
                );
                frames.push((
                    lane as u32,
                    RxFrame {
                        at,
                        from: RadioId(1_000_000 + lane as u32),
                        rssi_dbm: -55.0,
                        snr_db: 25.0,
                        bytes: Arc::from(&bytes[..]),
                    },
                ));
            }
        }
    }
    frames
}

/// At 10× admission the core keeps exact books: every hear is either
/// delivered or tail-dropped, and the counts match the queue bound to
/// the frame.
#[test]
fn conservation_law_closes_at_10x_admission() {
    let mut core = GatewaydCore::new(overload_config());
    let mut out = Vec::new();
    for (lane, frame) in overload_frames() {
        core.offer(lane, frame, &mut out)
            .expect("schedule is clean");
    }
    // finish() asserts conserves_offered_load() and the frame ledger
    // internally; the report lets us check the arithmetic exactly.
    let report = core.finish(&mut out);

    let hears = report.stats.total_hears();
    let delivered = report.stats.delivered;
    let suppressions = report.stats.total_suppressions();
    let drops = report.stats.total_drops();
    let shed = report.stats.total_shed();

    // The law, spelled out (finish() already asserted it — this is the
    // explicit 10×-admission witness).
    assert_eq!(
        delivered + suppressions + drops + shed,
        hears,
        "delivered + suppressions + queue_drops + shed must equal hears"
    );

    // Exact tail-drop arithmetic: each lane hears PER_WINDOW frames per
    // window but the queue admits QUEUE_CAP; the rest tail-drop.
    let expected_hears = (LANES * PER_WINDOW) as u64 * WINDOWS;
    let expected_delivered = (LANES * QUEUE_CAP) as u64 * WINDOWS;
    assert_eq!(hears, expected_hears);
    assert_eq!(delivered, expected_delivered);
    assert_eq!(suppressions, 0, "one hearer per frame: nothing to dedup");
    assert_eq!(shed, 0, "no faults armed");
    assert_eq!(drops, expected_hears - expected_delivered);
    assert!(drops > 0, "overload must actually overflow the queue");

    // Per-lane books close too, and the high-water mark pegs at the
    // bound.
    for lane in &report.stats.lanes {
        assert_eq!(lane.hears, (PER_WINDOW as u64) * WINDOWS);
        assert_eq!(
            lane.queue_drops,
            ((PER_WINDOW - QUEUE_CAP) as u64) * WINDOWS
        );
        assert_eq!(lane.queue_high_water, QUEUE_CAP);
    }
    assert!(report.frames_ledger_closes());
}

/// The same overload stream through the daemon shell: the scrape
/// output carries the drop counters and queue high-water gauges.
#[test]
fn scrape_output_surfaces_drops_and_high_water() {
    let header = WcapHeader {
        gateways: LANES as u32,
        queue_capacity: Some(QUEUE_CAP),
        poll_every: Duration::from_secs(POLL_SECS),
        stale_after: Duration::from_secs(3600),
        horizon: Instant::from_secs(WINDOWS * POLL_SECS),
        seed: 0,
        devices: (LANES * PER_WINDOW) as u64,
    };
    let mut wire = Vec::new();
    WireRecord::Header(header).encode(&mut wire);
    for (lane, frame) in overload_frames() {
        WireRecord::Frame(LaneFrame { lane, frame }).encode(&mut wire);
    }
    WireRecord::Shutdown.encode(&mut wire);

    let mut daemon = Daemon::new(DaemonOptions::default(), None).expect("daemon");
    let state = daemon.state();
    let report = daemon.serve_reader(&wire[..]).expect("serve");
    assert!(report.frames_ledger_closes());

    let metrics = state.lock().unwrap().render_metrics();
    let expected_drops = ((PER_WINDOW - QUEUE_CAP) as u64) * WINDOWS;
    for lane in 0..LANES {
        let drop_line = format!("counter cluster.lane.queue_drops{{lane={lane}}} {expected_drops}");
        assert!(
            metrics.contains(&drop_line),
            "scrape must carry exact per-lane drops; missing {drop_line:?} in:\n{metrics}"
        );
        let hw_line =
            format!("gauge   cluster.lane.queue.high_water{{lane={lane}}} last={QUEUE_CAP} high_water={QUEUE_CAP}");
        assert!(
            metrics.contains(&hw_line),
            "scrape must carry the queue high-water gauge; missing {hw_line:?} in:\n{metrics}"
        );
    }
    // The daemon front-door ledger is scraped alongside.
    assert!(metrics.contains("counter gatewayd.frames_in"));
    assert!(metrics.contains("counter gatewayd.rejected"));
}
