//! Property tests for the gatewayd framing stack: the length-prefixed
//! codec and the record vocabulary above it. The properties are the
//! transport contract the daemon leans on — arbitrary payloads survive
//! arbitrary chunkings byte-exactly, torn reads resume, malformed
//! lengths surface as typed errors, and no input (valid, torn, or
//! garbage) ever panics the decoder.

use proptest::prelude::*;
use std::sync::Arc;
use wile_gatewayd::codec::{encode_record, CodecError, FrameDecoder, MAX_RECORD_LEN};
use wile_gatewayd::wire::{LaneFrame, WcapHeader, WireRecord};
use wile_radio::medium::{RadioId, RxFrame};
use wile_radio::time::{Duration, Instant};

/// Split `wire` into chunks whose sizes are drawn from `cuts`
/// (1..=17 bytes each, cycled), push each chunk, and drain records
/// after every push. Every torn boundary the transport could produce
/// is some instance of this.
fn decode_chunked(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let n = cuts
            .get(i % cuts.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, 17)
            .min(wire.len() - pos);
        dec.push(&wire[pos..pos + n]);
        pos += n;
        i += 1;
        while let Some(r) = dec.next_record().expect("valid stream") {
            got.push(r);
        }
    }
    assert_eq!(dec.buffered(), 0, "no residue after a whole stream");
    got
}

proptest! {
    /// Any sequence of non-empty payloads round-trips byte-exactly
    /// through any chunking of the encoded stream.
    #[test]
    fn records_round_trip_across_arbitrary_chunkings(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..300), 1..20),
        cuts in prop::collection::vec(1usize..18, 1..12),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            encode_record(&mut wire, p);
        }
        let got = decode_chunked(&wire, &cuts);
        prop_assert_eq!(got, payloads);
    }

    /// A torn prefix of a valid stream yields exactly the records whose
    /// bytes fully arrived, never an error, and the tail resumes: after
    /// pushing the rest, the remaining records appear.
    #[test]
    fn torn_reads_resume(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..200), 1..10),
        tear_frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            encode_record(&mut wire, p);
        }
        let tear = ((wire.len() as f64 * tear_frac) as usize).min(wire.len());
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..tear]);
        let mut got = Vec::new();
        while let Some(r) = dec.next_record().expect("prefix of a valid stream")
        {
            got.push(r);
        }
        prop_assert!(got.len() <= payloads.len());
        dec.push(&wire[tear..]);
        while let Some(r) = dec.next_record().expect("resumed stream") {
            got.push(r);
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Zero and oversize declared lengths are typed errors that latch,
    /// regardless of what padding follows — and never a panic.
    #[test]
    fn bad_lengths_are_typed_and_latch(
        oversize in (MAX_RECORD_LEN as u32 + 1)..u32::MAX,
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_le_bytes());
        dec.push(&garbage);
        prop_assert_eq!(dec.next_record(), Err(CodecError::ZeroLength));
        prop_assert_eq!(dec.next_record(), Err(CodecError::ZeroLength));
        prop_assert!(dec.is_poisoned());

        let mut dec = FrameDecoder::new();
        dec.push(&oversize.to_le_bytes());
        dec.push(&garbage);
        let expect = CodecError::Oversize { len: oversize as usize };
        prop_assert_eq!(dec.next_record(), Err(expect));
        prop_assert_eq!(dec.next_record(), Err(expect));
    }

    /// Arbitrary garbage never panics the decoder: every outcome is
    /// `Ok(Some)`, `Ok(None)`, or a typed latched error.
    #[test]
    fn garbage_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(1usize..18, 1..8),
    ) {
        let mut dec = FrameDecoder::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < bytes.len() {
            let n = cuts[i % cuts.len()].min(bytes.len() - pos);
            dec.push(&bytes[pos..pos + n]);
            pos += n;
            i += 1;
            loop {
                match dec.next_record() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        prop_assert!(dec.is_poisoned());
                        break;
                    }
                }
            }
        }
    }

    /// The record vocabulary round-trips bit-exactly: lane, arrival
    /// stamp, radio id, RSSI/SNR f64 bit patterns, and frame bytes all
    /// survive encode → frame → decode.
    #[test]
    fn wire_records_round_trip(
        lane in any::<u32>(),
        at_ns in any::<u64>(),
        from in any::<u32>(),
        rssi_bits in any::<u64>(),
        snr_bits in any::<u64>(),
        frame_bytes in prop::collection::vec(any::<u8>(), 1..120),
        to_ns in any::<u64>(),
    ) {
        let records = vec![
            WireRecord::Frame(LaneFrame {
                lane,
                frame: RxFrame {
                    at: Instant::from_nanos(at_ns),
                    from: RadioId(from),
                    rssi_dbm: f64::from_bits(rssi_bits),
                    snr_db: f64::from_bits(snr_bits),
                    bytes: Arc::from(&frame_bytes[..]),
                },
            }),
            WireRecord::Advance { to: Instant::from_nanos(to_ns) },
            WireRecord::Shutdown,
        ];
        let mut wire = Vec::new();
        for r in &records {
            r.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut got = Vec::new();
        while let Some(body) = dec.next_record().unwrap() {
            got.push(WireRecord::decode(&body).unwrap());
        }
        // NaN RSSI/SNR breaks PartialEq on the f64s; compare the bit
        // patterns the wire actually carries.
        prop_assert_eq!(got.len(), records.len());
        for (g, r) in got.iter().zip(&records) {
            match (g, r) {
                (WireRecord::Frame(g), WireRecord::Frame(r)) => {
                    prop_assert_eq!(g.lane, r.lane);
                    prop_assert_eq!(g.frame.at, r.frame.at);
                    prop_assert_eq!(g.frame.from, r.frame.from);
                    prop_assert_eq!(
                        g.frame.rssi_dbm.to_bits(),
                        r.frame.rssi_dbm.to_bits()
                    );
                    prop_assert_eq!(
                        g.frame.snr_db.to_bits(),
                        r.frame.snr_db.to_bits()
                    );
                    prop_assert_eq!(&g.frame.bytes, &r.frame.bytes);
                }
                (g, r) => prop_assert_eq!(g, r),
            }
        }
    }

    /// Header parameters — including the unbounded-queue sentinel —
    /// round-trip exactly.
    #[test]
    fn headers_round_trip(
        gateways in 1u32..10_000,
        cap_raw in 0usize..1_000_001,
        poll_ns in 1u64..u64::MAX / 4,
        stale_ns in 1u64..u64::MAX / 4,
        horizon_ns in any::<u64>(),
        seed in any::<u64>(),
        devices in any::<u64>(),
    ) {
        // The top of the range doubles as the None (unbounded) case.
        let h = WcapHeader {
            gateways,
            queue_capacity: (cap_raw != 1_000_000).then_some(cap_raw),
            poll_every: Duration::from_nanos(poll_ns),
            stale_after: Duration::from_nanos(stale_ns),
            horizon: Instant::from_nanos(horizon_ns),
            seed,
            devices,
        };
        let mut wire = Vec::new();
        WireRecord::Header(h.clone()).encode(&mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let body = dec.next_record().unwrap().unwrap();
        prop_assert_eq!(WireRecord::decode(&body).unwrap(), WireRecord::Header(h));
    }
}
