//! Loopback end-to-end smoke: feeder → daemon → scrape, bounded
//! runtime, with the determinism contract asserted across the wire.
//!
//! Two levels:
//!
//! * in-process — [`Daemon::serve_tcp`] on a thread, [`feed_capture`]
//!   over a real TCP loopback connection, a live [`ScrapeServer`]
//!   probed mid-run; the final report must be byte-identical to the
//!   in-process metro run the capture was recorded from.
//! * binaries — the actual `wile-feeder` and `wile-gatewayd`
//!   executables wired together over loopback TCP, digest checked
//!   against the library run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::time::{Duration as StdDuration, Instant as WallInstant};
use wile_gatewayd::capture::capture_metro;
use wile_gatewayd::daemon::{Daemon, DaemonOptions};
use wile_gatewayd::feeder::{feed_capture, Pace};
use wile_gatewayd::scrape::ScrapeServer;
use wile_gatewayd::signal;
use wile_scenarios::metro::MetroConfig;

const DEADLINE: StdDuration = StdDuration::from_secs(60);

#[test]
fn in_process_loopback_feeder_daemon_scrape() {
    signal::reset_stop();
    let cfg = MetroConfig::smoke(7);
    let (metro, capture, frames) = capture_metro(&cfg, 1, Vec::new()).expect("capture");
    assert!(frames > 0);

    let mut daemon = Daemon::new(
        DaemonOptions {
            workers: 1,
            keep_deliveries: true,
            config: None,
        },
        None,
    )
    .expect("daemon");
    let scrape = ScrapeServer::start("127.0.0.1:0", daemon.state()).expect("scrape server");
    let scrape_addr = scrape.addr();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let daemon_addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || daemon.serve_tcp(listener).expect("serve"));

    // The scrape endpoint is live before any frames arrive.
    let health = http_get(&scrape_addr.to_string(), "/healthz");
    assert_eq!(health.trim(), "ok");

    // Feed the capture at max rate over the loopback connection; the
    // feeder appends Advance-to-horizon + Shutdown, so the daemon
    // drains and returns.
    let mut conn = TcpStream::connect(daemon_addr).expect("connect daemon");
    let summary = feed_capture(&capture, &mut conn, Pace::MaxRate).expect("feed");
    assert_eq!(summary.frames, frames);
    drop(conn);

    let report = server.join().expect("server thread");
    assert!(
        report.matches_metro(&metro),
        "loopback transport must reproduce the in-process run byte for byte"
    );
    assert_eq!(report.delivery_digest, metro.delivery_digest);
    assert_eq!(report.rejected, 0);
    assert!(report.frames_ledger_closes());

    // Post-run scrape: the final report's counters are served.
    let metrics = http_get(&scrape_addr.to_string(), "/metrics");
    assert!(metrics.contains("counter cluster.delivered"));
    assert!(metrics.contains(&format!("counter gatewayd.frames_in {frames}")));
    let status = http_get(&scrape_addr.to_string(), "/report");
    assert!(status.contains("\"phase\":\"finished\""));
    assert!(status.contains(&format!("{:#018x}", metro.delivery_digest)));
    scrape.shutdown();
}

#[test]
fn binaries_end_to_end_over_loopback() {
    let cfg = MetroConfig::smoke(9);
    let (metro, capture, _) = capture_metro(&cfg, 1, Vec::new()).expect("capture");
    let dir = std::env::temp_dir().join(format!("wile_loopback_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let wcap = dir.join("smoke9.wcap");
    std::fs::write(&wcap, &capture).expect("write capture");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_wile-gatewayd"))
        .args(["--listen", "127.0.0.1:0", "--scrape", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wile-gatewayd");
    let mut stderr = BufReader::new(daemon.stderr.take().expect("stderr piped"));
    let scrape_addr = wait_for_addr(&mut stderr, "scrape endpoint on");
    let listen_addr = wait_for_addr(&mut stderr, "listening on");

    // Liveness before traffic.
    assert_eq!(http_get(&scrape_addr, "/healthz").trim(), "ok");

    let feeder = Command::new(env!("CARGO_BIN_EXE_wile-feeder"))
        .args([
            "--capture",
            wcap.to_str().unwrap(),
            "--connect",
            &listen_addr,
        ])
        .status()
        .expect("run wile-feeder");
    assert!(feeder.success(), "feeder must exit 0");

    // The feeder's Shutdown record drains the daemon; bounded wait.
    let start = WallInstant::now();
    let status = loop {
        if let Some(s) = daemon.try_wait().expect("try_wait") {
            break s;
        }
        assert!(
            start.elapsed() < DEADLINE,
            "daemon did not exit after the feeder's shutdown record"
        );
        std::thread::sleep(StdDuration::from_millis(20));
    };
    assert!(status.success(), "daemon must exit 0, got {status:?}");

    let mut stdout = String::new();
    daemon
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut stdout)
        .expect("read stdout");
    assert!(
        stdout.contains(&format!("{:#018x}", metro.delivery_digest)),
        "daemon report must carry the in-process digest {:#018x}:\n{stdout}",
        metro.delivery_digest
    );
    assert!(stdout.contains("closed (nothing lost)"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Minimal HTTP/1.0 GET against the scrape endpoint, returning the
/// body.
fn http_get(addr: &str, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect scrape");
    write!(conn, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}

/// Read stderr lines until the daemon announces an endpoint matching
/// `marker`, returning the `host:port` it bound.
fn wait_for_addr(stderr: &mut impl BufRead, marker: &str) -> String {
    let start = WallInstant::now();
    let mut line = String::new();
    loop {
        assert!(
            start.elapsed() < DEADLINE,
            "daemon never announced {marker:?}"
        );
        line.clear();
        let n = stderr.read_line(&mut line).expect("read daemon stderr");
        assert!(n > 0, "daemon stderr closed before announcing {marker:?}");
        if let Some(rest) = line.trim().split(marker).nth(1) {
            return rest.trim().trim_start_matches("http://").to_string();
        }
    }
}
