//! Offline stand-in for the subset of `criterion` this workspace's
//! benches use: `Criterion`, `benchmark_group` / `bench_function` /
//! `sample_size` / `throughput` / `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The registry is unreachable from the build environment, so this
//! crate provides a minimal timer-based harness: each benchmark is
//! warmed up briefly, then timed over `sample_size` batches, and the
//! median per-iteration time is printed. No statistics, plots, or
//! baselines — enough to run `cargo bench` and eyeball regressions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, recording `sample_count` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: aim for ~5 ms per sample.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        let ns = b.median_ns();
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / (ns * 1e-9) / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / (ns * 1e-9))
            }
            _ => String::new(),
        };
        println!("{}/{:<28} {:>12}{}", self.name, id, human_ns(ns), extra);
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
