//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` /
//! `Rng::gen_bool`.
//!
//! The registry is not reachable from the build environment, so the
//! workspace vendors this minimal, dependency-free implementation. The
//! generator is xoshiro256** seeded through SplitMix64 — not the
//! upstream ChaCha12 stream, but every consumer in this repository
//! only requires determinism per seed and uniformity, never a specific
//! stream.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample from a range.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` double from 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Unbiased uniform draw in `[0, n)` via rejection (Lemire-style
/// threshold on the modulus).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// High-level sampling methods, after the upstream trait of the same
/// name.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for the
    /// upstream `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u8..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_statistics() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
