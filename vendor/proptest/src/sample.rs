//! Sampling helpers (`prop::sample::Index`, `prop::sample::select`).

use crate::strategy::{Arbitrary, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;

/// A stand-in for "an index into a collection whose length is not yet
/// known": stores a unit-interval position and projects it onto
/// `0..len` on demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Index(f64);

impl Index {
    /// Project onto `0..len`. Panics when `len == 0`, like upstream.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.0 * len as f64) as usize).min(len - 1)
    }
}

impl Arbitrary for Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        Index(rng.gen_range(0.0..1.0))
    }
}

/// Strategy drawing one element of `choices` uniformly.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select over an empty list");
    Select { choices }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.gen_range(0..self.choices.len())].clone()
    }
}
