//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike upstream there is no value tree and no shrinking — a
/// strategy simply draws a value from the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` macro).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `choices`; panics if empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.choices.len());
        self.choices[i].generate(rng)
    }
}

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Choose one strategy uniformly per case and draw from it.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite values only — upstream's any::<f64>() defaults exclude
        // NaN/∞ unless asked for, and so do all consumers here.
        rng.gen_range(-1.0e12..1.0e12)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_value(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}
