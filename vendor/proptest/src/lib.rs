//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The registry is unreachable from the build environment, so this
//! crate reimplements the pieces the repository's property tests rely
//! on: the `proptest!` macro, range / `any` / collection / tuple /
//! `prop_map` / `prop_oneof` / sample strategies, a tiny `[a-z]{m,n}`
//! class of string strategies, and the `prop_assert*` / `prop_assume`
//! macros. There is **no shrinking**: a failing case reports its seed
//! and values via the panic message instead of a minimized input,
//! which is sufficient for regression-style property suites.
//!
//! Case count defaults to 64 and honours the `PROPTEST_CASES`
//! environment variable, mirroring upstream behaviour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collection;
mod macros;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the repository's tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Run every generated case of a `proptest!` test.
///
/// Public because the `proptest!` macro expands to a call to it; not
/// part of the emulated upstream API.
pub fn run_cases<F>(config: test_runner::ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
        .max(1) as u64;
    // Deterministic per-test seed: tests must not flake between runs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut rejects = 0u64;
    let mut done = 0u64;
    let mut index = 0u64;
    while done < cases {
        let case_seed = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        index += 1;
        let mut rng = test_runner::TestRng::new(case_seed);
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(test_runner::TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects < 10_000,
                    "{test_name}: too many prop_assume rejections ({rejects})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{done} (seed {case_seed:#x}) failed: {msg}");
            }
        }
    }
}
