//! The `proptest!` test-definition macro and the in-test assertion
//! macros.

/// Define property tests. Supports the upstream surface this
/// repository uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///     #[test]
///     fn name(a in 0u8..4, mut b in any::<u16>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            $crate::run_cases($cfg, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                $crate::__proptest_bind!(__rng, $($args)*);
                #[allow(unreachable_code, clippy::unused_unit)]
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        Ok(())
                    })();
                __result
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy`
/// arguments.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (it does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
