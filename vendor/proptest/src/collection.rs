//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
