//! The per-case RNG, configuration, and error type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count.
    Reject,
    /// A `prop_assert*!` failed with this rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure from a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The RNG strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one generated case.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
