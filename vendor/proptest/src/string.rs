//! String strategies from a small regex subset.
//!
//! Upstream proptest accepts any regex as a `String` strategy. This
//! stand-in supports the subset the workspace's tests use — sequences
//! of literal characters and `[a-z0-9_]`-style classes, each with an
//! optional `{n}` / `{m,n}` / `?` / `+` / `*` quantifier — which is
//! plenty for identifier-shaped inputs like `"[a-z]{4,12}"`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Piece {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                            set.extend((lo..=hi).skip(1)); // lo already pushed
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("dangling escape")],
            ch => vec![ch],
        };
        assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        pieces.push(Piece { choices, min, max });
    }
    pieces
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                out.push(piece.choices[rng.gen_range(0..piece.choices.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z]{4,12}".generate(&mut rng);
            assert!((4..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::new(2);
        let s = "ab[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
