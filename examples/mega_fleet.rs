//! E10: the 10,000-device, one-simulated-hour fleet on the `wile-sim`
//! kernel — the scalability witness for the bounded medium + sparse
//! time advancement combination.
//!
//! Prints delivery statistics, wall-clock time, and peak RSS (VmHWM
//! from /proc/self/status where available). Numbers are recorded in
//! EXPERIMENTS.md E10.
//!
//! ```sh
//! cargo run --release --example mega_fleet
//! ```

use std::time::Instant as WallInstant;
use wile_sim::{run_fleet, FleetConfig};

/// Peak resident set size in MiB, if the platform exposes it.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let cfg = FleetConfig::mega(42);
    println!(
        "mega fleet: {} devices, {} s simulated, beacon every {} s, poll every {} s",
        cfg.devices,
        cfg.duration.as_secs_f64(),
        cfg.period.as_secs_f64(),
        cfg.poll_every.as_secs_f64(),
    );

    let t0 = WallInstant::now();
    let report = run_fleet(&cfg);
    let wall = t0.elapsed();

    println!(
        "beacons sent        {:>12}\n\
         delivered           {:>12}  ({:.2}%)\n\
         bad FCS             {:>12}\n\
         peak live tx        {:>12}  (bounded-medium witness)\n\
         retired tx          {:>12}\n\
         tx energy           {:>12.1} mJ\n\
         simulated end       {:>12}",
        report.beacons_sent,
        report.messages_delivered,
        report.delivery_ratio() * 100.0,
        report.bad_fcs,
        report.peak_live_tx,
        report.retired_tx,
        report.tx_energy_mj,
        report.sim_end,
    );
    println!("wall clock          {:>12.2} s", wall.as_secs_f64());
    match peak_rss_mib() {
        Some(mib) => println!("peak RSS            {:>12.1} MiB", mib),
        None => println!("peak RSS            {:>12}", "(unavailable)"),
    }
}
