//! E15: the mixed-protocol metro — one medium simultaneously carrying
//! Wi-LE beacons, BLE advertising trains, and WiFi migrants, run twice
//! (worker counts 1 and 4) and checked digest-identical.
//!
//! This is the payoff witness for the MAC service layer: three
//! protocol backends behind one `MacSap` trait share one hall of air,
//! composed by the kernel air lease, and mid-run a set of devices
//! migrates Wi-LE → WiFi through MLME-SCAN + MLME-ASSOCIATE alone.
//! Numbers are recorded in EXPERIMENTS.md E15.
//!
//! ```sh
//! cargo run --release --example mixed_metro
//! # scaled-up / scaled-down smoke (same assertions):
//! WILE_E15_DEVICES=200 cargo run --release --example mixed_metro
//! ```

use std::time::Instant as WallInstant;
use wile_scenarios::mixed::{run_mixed, MixedConfig, MixedReport};

fn print_report(tag: &str, report: &MixedReport, wall_s: f64) {
    println!(
        "[workers={tag}] wile beacons {:>8}  delivered {:>8}  ble events {:>7}  \
         indications {:>7}  migrations {}/{}  wifi data {:>5}  deferrals {:>5}  wall {:>6.2} s",
        report.wile_beacons,
        report.stats.delivered,
        report.ble_events,
        report.ble_indications,
        report.migrations,
        report.migrants,
        report.migrant_wifi_data,
        report.deferrals,
        wall_s,
    );
    assert!(
        report.stats.conserves_offered_load(),
        "conservation law violated at workers={tag}"
    );
}

fn main() {
    // WILE_E15_DEVICES scales the Wi-LE fleet (BLE advertisers and
    // migrants ride along proportionally); the default is the smoke
    // geometry from `MixedConfig::smoke`.
    let cfg = match std::env::var("WILE_E15_DEVICES") {
        Ok(v) => {
            let devices: usize = v.parse().expect("WILE_E15_DEVICES must be an integer");
            MixedConfig::scaled(devices, 42)
        }
        Err(_) => MixedConfig::smoke(42),
    };
    println!(
        "mixed metro: {} gateways + 3 BLE scanners, {} Wi-LE + {} BLE + {} migrating devices, \
         {} s simulated (migration at {})",
        cfg.gateways,
        cfg.wile_devices,
        cfg.ble_devices,
        cfg.migrants,
        cfg.duration.as_secs_f64(),
        cfg.t_migrate,
    );

    // The determinism contract, executed: worker counts are explicit
    // (not `available_workers`) so the witness is independent of the
    // host and of the WILE_WORKERS env var.
    let t0 = WallInstant::now();
    let single = run_mixed(&cfg, 1);
    let wall_single = t0.elapsed().as_secs_f64();
    print_report("1", &single, wall_single);

    let t1 = WallInstant::now();
    let quad = run_mixed(&cfg, 4);
    let wall_quad = t1.elapsed().as_secs_f64();
    print_report("4", &quad, wall_quad);

    assert_eq!(single, quad, "mixed reports diverged between worker counts");
    assert_eq!(
        single.migrations, cfg.migrants as u64,
        "every migrant must complete its MLME association"
    );
    assert!(single.ble_indications > 0, "scanners decoded nothing");
    println!(
        "worker identity     ok  (wile digest {:#018x}, ble digest {:#018x})",
        single.delivery_digest, single.ble_digest
    );
}
