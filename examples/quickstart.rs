//! Quickstart: one temperature sensor, one phone, one Wi-LE beacon.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wile::prelude::*;
use wile::sensor::{decode_readings, encode_readings, Reading};
use wile_radio::{Instant, Medium, RadioConfig};

fn main() {
    // A simulated 2.4 GHz medium: the sensor at the origin, a phone
    // three metres away (the paper's "similar range as BLE … a few
    // meters" regime at 72.2 Mb/s, 0 dBm).
    let mut medium = Medium::new(Default::default(), 1);
    let sensor_radio = medium.attach(RadioConfig::default());
    let phone_radio = medium.attach(RadioConfig {
        position_m: (3.0, 0.0),
        ..Default::default()
    });

    // The sensor: device id 42, asleep since t=0.
    let mut sensor = Injector::new(DeviceIdentity::new(42), Instant::ZERO);

    // Wake, inject one reading, go back to deep sleep.
    let payload = encode_readings(&[Reading::TemperatureCentiC(2150), Reading::BatteryMv(2987)]);
    let report = sensor.inject(&mut medium, sensor_radio, &payload);
    println!(
        "injected beacon: {} bytes on air, tx window {} µs, asleep again at {}",
        report.beacon_len,
        report.t_tx_end.since(report.t_tx_start).as_us(),
        report.t_sleep,
    );

    // The phone's scan path sees the hidden-SSID beacon.
    let mut phone = Gateway::new();
    for rx in phone.poll(&mut medium, phone_radio, Instant::from_secs(2)) {
        println!(
            "device {} seq {} rssi {:.1} dBm:",
            rx.device_id, rx.seq, rx.rssi_dbm
        );
        for r in decode_readings(&rx.payload).expect("sensor payload") {
            println!("  {r}");
        }
    }
    let stats = phone.stats();
    println!(
        "gateway stats: {} frames seen, {} delivered, {} duplicates",
        stats.frames_seen, stats.delivered, stats.duplicates
    );
}
