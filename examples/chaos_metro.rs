//! E13: chaos metro — the E11 deployment (8 gateways × 20,000 devices
//! × 1 simulated hour) driven through a five-phase infrastructure fault
//! campaign: two gateway crashes (checkpoint-restored and cold),
//! a backhaul partition with bounded store-and-forward, an aggregator
//! overload window, and an air-side radio outage, all on one unified
//! timeline.
//!
//! Prints cluster statistics with the extended conservation ledger, the
//! per-phase E13 table (delivery ratio, sheds, losses per fault
//! window), and crash-recovery timing. Numbers are recorded in
//! EXPERIMENTS.md E13.
//!
//! ```sh
//! cargo run --release --example chaos_metro [-- --capture chaos.wcap]
//! ```
//!
//! With `--capture PATH`, the raw per-lane frame stream — the *offered*
//! load, including frames a crashed lane never ingests — is recorded to
//! a `.wcap` file for daemon replay.

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant as WallInstant;
use wile_gatewayd::capture::{capture_tap, finish_shared, metro_header, CaptureWriter};
use wile_scenarios::chaos::{run_chaos_with, ChaosConfig};
use wile_sim::engine::available_workers;
use wile_telemetry::Telemetry;

/// `--capture PATH` (the only accepted argument).
fn parse_capture_arg() -> Option<PathBuf> {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        None => None,
        Some("--capture") => Some(PathBuf::from(it.next().expect("--capture requires a path"))),
        Some(a) => panic!("unknown argument {a:?} (usage: chaos_metro [--capture PATH])"),
    }
}

/// Peak resident set size in MiB, if the platform exposes it.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let cfg = ChaosConfig::metro(42);
    let workers = available_workers();
    println!(
        "chaos metro: {} gateways, {} devices, {} s simulated, {} fault phases, {} workers",
        cfg.metro.gateways,
        cfg.metro.devices,
        cfg.metro.duration.as_secs_f64(),
        cfg.infra.phases().len() + cfg.metro.faults.as_ref().map_or(0, |f| f.phases().len()),
        workers,
    );

    let capture = parse_capture_arg();
    let t0 = WallInstant::now();
    let mut tel = Telemetry::new();
    let writer = capture.as_ref().map(|p| {
        let file = BufWriter::new(File::create(p).expect("create capture file"));
        Rc::new(RefCell::new(CaptureWriter::new(
            file,
            &metro_header(&cfg.metro),
        )))
    });
    let report = run_chaos_with(&cfg, workers, &mut tel, writer.as_ref().map(capture_tap));
    let wall = t0.elapsed();
    if let (Some(w), Some(p)) = (writer, capture) {
        let (_, frames) = finish_shared(w).expect("flush capture");
        println!(
            "capture             {:>12} frames -> {}",
            frames,
            p.display()
        );
    }

    let stats = &report.metro.stats;
    println!(
        "beacons sent        {:>12}\n\
         gateway hears       {:>12}  ({:.2}× coverage overlap)\n\
         delivered           {:>12}  ({:.2}% of beacons, at most once)\n\
         dedup suppressions  {:>12}\n\
         queue drops         {:>12}\n\
         shed                {:>12}  (partition retry + overload admission)\n\
         lost in crash       {:>12}\n\
         crashes / restarts  {:>7} / {:<4}\n\
         checkpoints taken   {:>12}\n\
         devices recovered   {:>12}  (orphan re-elections)\n\
         roaming handoffs    {:>12}\n\
         devices tracked     {:>12}\n\
         peak live tx        {:>12}\n\
         simulated end       {:>12}",
        report.metro.beacons_sent,
        stats.total_hears(),
        stats.total_hears() as f64 / report.metro.beacons_sent.max(1) as f64,
        stats.delivered,
        report.metro.delivery_ratio() * 100.0,
        stats.total_suppressions(),
        stats.total_drops(),
        stats.total_shed(),
        stats.total_lost_in_crash(),
        stats.lanes.iter().map(|l| l.crashes).sum::<u64>(),
        stats.lanes.iter().map(|l| l.restarts).sum::<u64>(),
        stats.checkpoints,
        stats.recovered,
        stats.handoffs,
        stats.devices_tracked,
        report.metro.peak_live_tx,
        report.metro.sim_end,
    );
    println!(
        "conservation        {:>12}  (delivered + suppressed + dropped + shed + lost == hears)",
        if stats.conserves_offered_load() {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "at-most-once        {:>12}  ({} duplicate deliveries)",
        if report.duplicate_deliveries == 0 {
            "ok"
        } else {
            "VIOLATED"
        },
        report.duplicate_deliveries,
    );

    println!("\nfault phases (poll-granularity attribution):");
    println!(
        "  {:<14} {:>9} {:>7} {:>7} {:>9} {:>10} {:>6} {:>6} {:>9}",
        "phase", "tag", "start", "end", "hears", "delivered", "shed", "lost", "delivery"
    );
    for p in &report.phases {
        println!(
            "  {:<14} {:>9} {:>6.0}s {:>6.0}s {:>9} {:>10} {:>6} {:>6} {:>8.1}%",
            p.label,
            p.tag,
            p.start.as_secs_f64(),
            p.end.as_secs_f64(),
            p.hears,
            p.delivered,
            p.shed,
            p.lost_in_crash,
            p.delivery_ratio() * 100.0,
        );
    }

    println!("\ncrash recovery:");
    for r in &report.recoveries {
        println!(
            "  lane {}: crashed {:.0}s, restarted {:.0}s ({}), first post-restart win {}",
            r.lane,
            r.crashed_at.as_secs_f64(),
            r.restarted_at.as_secs_f64(),
            if r.restored {
                "warm, from checkpoint"
            } else {
                "cold"
            },
            match r.recovery_after_restart() {
                Some(lag) => format!("+{:.0} s", lag.as_secs_f64()),
                None => "never".into(),
            },
        );
    }
    println!("lane events         {:>12}", report.lane_events.len());
    println!("delivery digest     {:#018x}", report.metro.delivery_digest);
    println!("wall clock          {:>12.2} s", wall.as_secs_f64());
    match peak_rss_mib() {
        Some(mib) => println!("peak RSS            {:>12.1} MiB", mib),
        None => println!("peak RSS            {:>12}", "(unavailable)"),
    }

    let tel_report = tel.report();
    println!("\n{}", tel_report.render_with_prof());
    println!("telemetry digest    {:#018x}", tel_report.digest());
}
