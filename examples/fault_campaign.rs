//! Fault-injection campaign (E8): a four-device fleet runs through a
//! scheduled disturbance timeline — a long 2.4 GHz burst-loss phase, a
//! duty-cycled jammer, a gateway outage, and a thermal clock-skew step —
//! twice: once with the feedback-driven adaptive repeat policy, once
//! with the static single-copy baseline, on the *same* seeded faults.
//!
//! The report shows what adaptation buys on the unacknowledged uplink:
//! delivery ratio per fault phase, recovery time after each disturbance
//! ends, and the energy cost of the extra copies against the configured
//! per-message budget.
//!
//! ```sh
//! cargo run --release --example fault_campaign
//! ```

use wile::reliability::{AdaptiveConfig, EnergyBudget, RepeatPolicy};
use wile_radio::time::Duration;
use wile_scenarios::campaign::{
    run_campaign_telemetry, run_with_baseline, AdaptMode, CampaignConfig,
};

fn main() {
    let mode = AdaptMode::Feedback {
        cfg: AdaptiveConfig {
            target_delivery: 0.9,
            base: RepeatPolicy::SINGLE,
            budget: EnergyBudget {
                per_message_uj_ceiling: 800.0,
                per_copy_uj: 100.0,
            },
            backoff_step: Duration::from_secs(1),
            max_backoff: Duration::from_secs(8),
        },
        every: 2,
    };
    let cfg = CampaignConfig::demo(42, mode);
    let (adaptive, baseline) = run_with_baseline(&cfg);

    println!("{}", adaptive.render());
    println!("{}", baseline.render());

    println!("phase-by-phase delivery, adaptive vs static single-copy:");
    for (a, b) in adaptive.phases.iter().zip(baseline.phases.iter()) {
        println!(
            "  {:<28} {:>5.1}%  vs {:>5.1}%   ({:+.1} pp)",
            a.label,
            a.ratio() * 100.0,
            b.ratio() * 100.0,
            (a.ratio() - b.ratio()) * 100.0,
        );
    }
    println!(
        "energy: {:.1} µJ/msg adaptive (ceiling 800) vs {:.1} µJ/msg static",
        adaptive.energy_uj_per_message, baseline.energy_uj_per_message,
    );

    // Re-run the adaptive arm with full telemetry (identical report —
    // observation never steers) and show the deterministic snapshot.
    let (observed, tel) = run_campaign_telemetry(&cfg);
    assert_eq!(observed, adaptive, "telemetry must not steer the run");
    let tel_report = tel.report();
    println!("\n{}", tel_report.render_with_prof());
    println!(
        "telemetry digest    {:#018x}   trace events {}",
        tel_report.digest(),
        tel.trace().len()
    );
}
