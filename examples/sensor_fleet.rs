//! The §6 "network of IoT devices" study: many sensors, equal
//! transmission periods, synchronized start — do collisions persist?
//!
//! ```sh
//! cargo run --release --example sensor_fleet              # defaults
//! cargo run --release --example sensor_fleet -- 12 40     # devices rounds
//! ```

use wile::sched::{run_fleet, FleetConfig};
use wile_radio::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let devices: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);

    println!(
        "fleet: {devices} devices, {rounds} rounds, 60 s nominal period, synchronized start\n"
    );

    for (label, drift) in [
        ("ideal clocks (pathological)", None),
        ("±20 ppm IoT crystals", Some(1u64)),
    ] {
        let out = run_fleet(&FleetConfig {
            devices,
            rounds,
            drift,
            period: Duration::from_secs(60),
            ..Default::default()
        });
        println!("{label}:");
        println!(
            "  overall delivery: {:>5.1} %",
            out.delivery_ratio() * 100.0
        );
        let (head, tail) = out.head_tail_ratio(5);
        println!("  first 5 rounds:   {:>5.1} %", head * 100.0);
        println!("  last 5 rounds:    {:>5.1} %", tail * 100.0);
        print!("  per-round: ");
        for (i, d) in out.delivered_per_round.iter().enumerate() {
            if i > 0 && i % 15 == 0 {
                print!("\n             ");
            }
            print!("{d:>2}/{devices} ");
        }
        println!("\n");
    }
    println!(
        "The paper's §6 conjecture: \"if two devices happen to transmit at the same time and\n\
         they have the same transmission period, their transmissions will automatically differ\n\
         away from each other due to the jitter of their clocks.\" The second run shows exactly\n\
         that; the first shows why the conjecture needs real crystals to hold."
    );
}
