//! Regenerate the paper's evaluation artifacts.
//!
//! ```sh
//! cargo run --release --example power_survey            # everything
//! cargo run --release --example power_survey -- table1  # one artifact
//! cargo run --release --example power_survey -- fig3a
//! cargo run --release --example power_survey -- fig3b
//! cargo run --release --example power_survey -- fig4
//! cargo run --release --example power_survey -- csv     # machine-readable dump
//! ```

use wile_instrument::export::{series_to_dat, to_csv};
use wile_scenarios::{ablation, fig3, fig4, report, table1};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "table1" => print!("{}", report::render_table1(&table1::table1())),
        "fig3a" => print!("{}", report::render_fig3(&fig3::fig3a(), 100, 14)),
        "fig3b" => print!("{}", report::render_fig3(&fig3::fig3b(), 100, 14)),
        "fig4" => {
            let t = table1::table1();
            let f = fig4::fig4_from(&t, &fig4::default_grid());
            print!("{}", report::render_fig4(&f, 100, 16));
        }
        "csv" => dump_csv(),
        "ablations" => ablations(),
        "all" => {
            print!("{}", report::render_all());
            println!();
            ablations();
        }
        other => {
            eprintln!("unknown artifact '{other}'; try table1 | fig3a | fig3b | fig4 | csv | ablations | all");
            std::process::exit(2);
        }
    }
}

fn dump_csv() {
    // Figure 3 waveforms as CSV, Figure 4 curves as gnuplot .dat blocks.
    let a = fig3::fig3a();
    println!("# --- fig3a.csv ---");
    print!("{}", to_csv(&fig3::plot_trace(&a, 2000)));
    let b = fig3::fig3b();
    println!("# --- fig3b.csv ---");
    print!("{}", to_csv(&fig3::plot_trace(&b, 2000)));
    let f = fig4::fig4();
    for c in &f.curves {
        println!("# --- fig4 ---");
        print!("{}", series_to_dat(c.name, &c.points));
    }
}

fn ablations() {
    println!("Ablation: injection bitrate (128-byte beacon, 0 dBm)");
    println!("{:>12} {:>14} {:>10}", "rate", "tx energy", "range");
    for p in ablation::bitrate_sweep(128) {
        println!(
            "{:>12} {:>11.1} µJ {:>8.1} m",
            p.rate.to_string(),
            p.tx_energy_uj,
            p.range_m
        );
    }
    println!();
    println!("Ablation: payload size vs fragmentation");
    let cap = wile::encode::FRAGMENT_CAPACITY;
    for p in ablation::payload_sweep(&[8, 64, cap, cap + 1, 500, 900]) {
        println!(
            "  payload {:>4} B -> beacon {:>4} B, {} fragment(s), {:>6.1} µJ",
            p.payload_len, p.beacon_len, p.fragments, p.tx_energy_uj
        );
    }
    println!();
    println!("Ablation: init-time scaling toward the ASIC regime (§5.4)");
    for p in ablation::init_time_sweep(&[1.0, 0.5, 0.2, 0.05, 0.01]) {
        println!(
            "  init {:>8.4} s -> full cycle {:>10.1} µJ",
            p.init_s, p.full_cycle_uj
        );
    }
    let asic = ablation::asic_full_cycle();
    println!(
        "  ASIC endpoint: {:.1} µJ per full wake cycle (BLE: 71 µJ)",
        asic.energy_per_packet_mj * 1000.0
    );
    println!();
    println!("Ablation: failed-scan energy (AP unreachable)");
    let failed = ablation::failed_scan_energy_mj();
    println!(
        "  failed WiFi-DC wake: {failed:.1} mJ (successful association: {:.1} mJ)",
        wile_scenarios::wifi_dc::table1_row().energy_per_packet_mj
    );
    println!();
    println!("Ablation: channel-scan overhead (AP channel unknown)");
    for k in [1usize, 3, 11] {
        println!(
            "  scanning {k:>2} channels -> +{:>6.1} mJ per wake",
            ablation::channel_scan_overhead_mj(k)
        );
    }
    println!();
    println!("Ablation: §6 two-way receive-window cadence (8 cycles, 8 queued commands)");
    for p in ablation::twoway_cadence_sweep(&[1, 2, 4], 8) {
        println!(
            "  window every {} beacon(s): {:>6.1} ms listening, {} commands delivered",
            p.window_every,
            p.listen_time_s * 1000.0,
            p.commands_delivered
        );
    }
    println!();
    println!("Ablation: §6 clock-drift decorrelation (4 devices, same period, same start)");
    let (ideal, drifting) = ablation::drift_ablation(4, 12);
    println!(
        "  ideal clocks:    delivery {:>5.1} %  (collisions persist)",
        ideal.delivery_ratio * 100.0
    );
    println!(
        "  ±20 ppm crystals: delivery {:>5.1} %, tail {:>5.1} %  (drift pulls them apart)",
        drifting.delivery_ratio * 100.0,
        drifting.tail_ratio * 100.0
    );
}
