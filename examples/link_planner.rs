//! Deployment planner: given a target distance and reporting interval,
//! pick the injection rate, repeat count and estimate battery life —
//! the §5.4 rate-choice argument turned into a tool.
//!
//! ```sh
//! cargo run --release --example link_planner                # defaults: 5 m, 10 min
//! cargo run --release --example link_planner -- 25 2        # 25 m, report every 2 min
//! ```

use wile::planning::{max_range_m, plan_link};
use wile::reliability::RepeatPolicy;
use wile::scanner::ScanSchedule;
use wile_device::battery::Battery;
use wile_device::esp32::{esp32_current_model, esp32_timing, SUPPLY_V};
use wile_device::PowerState;
use wile_radio::channel::ChannelModel;
use wile_radio::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let distance_m: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5.0);
    let interval_min: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10.0);

    let channel = ChannelModel::default();
    let beacon_len = 128;
    let tx_power = 0.0;

    println!(
        "Wi-LE deployment plan — {distance_m} m to the gateway, reporting every {interval_min} min"
    );
    println!(
        "channel model: log-distance n={}, noise floor {} dBm\n",
        channel.exponent,
        channel.effective_noise_dbm()
    );

    let Some(plan) = plan_link(&channel, distance_m, tx_power, beacon_len, 0.05) else {
        let reach = max_range_m(&channel, tx_power, beacon_len, 0.05);
        println!("✗ no rate closes this link at {tx_power} dBm (max range ≈ {reach:.0} m).");
        println!("  options: raise TX power, move the gateway closer, or add a relay.");
        std::process::exit(1);
    };

    println!(
        "rate choice:     {} (SNR {:.1} dB, per-beacon delivery {:.1} %)",
        plan.rate,
        plan.snr_db,
        plan.delivery_probability * 100.0
    );
    println!("beacon airtime:  {} µs", plan.airtime_us);

    // Repeats for 99.9 % against RF loss alone, and against a
    // duty-cycled phone scanner.
    let k_rf = RepeatPolicy::copies_for(plan.delivery_probability, 0.999).unwrap_or(15);
    println!("repeats (always-on gateway, 99.9 % target): {k_rf}");
    let phone = ScanSchedule::phone_background();
    match phone.copies_for_scanner(
        plan.delivery_probability,
        Duration::from_us(plan.airtime_us),
        0.9,
    ) {
        Some(k) => println!("repeats (phone background scan, 90 % target): {k}"),
        None => println!(
            "repeats (phone background scan, 90 % target): unreachable within 15 copies \
             — spread copies across scan cycles (duty cycle {:.1} %)",
            phone.duty_cycle() * 100.0
        ),
    }

    // Energy per report: full wake cycle + (k-1) extra tx windows.
    let model = esp32_current_model();
    let timing = esp32_timing();
    let wake_s =
        (timing.boot_from_deep_sleep + timing.wifi_init_inject + timing.sleep_entry).as_secs_f64();
    let tx_s = (timing.tx_ramp.as_us() + plan.airtime_us) as f64 * 1e-6;
    let wake_mj = model.current_ma(PowerState::Active { mhz: 80 }) * SUPPLY_V * wake_s;
    let tx_mj = model.current_ma(PowerState::RadioTx {
        power_dbm: tx_power,
    }) * SUPPLY_V
        * tx_s;
    let per_report_mj = wake_mj + k_rf as f64 * tx_mj;
    println!("\nenergy per report (ESP32 full cycle, {k_rf} copies): {per_report_mj:.1} mJ");

    // Battery life at the requested cadence.
    let interval_s = interval_min * 60.0;
    let idle_ma = model.current_ma(PowerState::DeepSleep);
    let avg_ma = per_report_mj / SUPPLY_V / interval_s + idle_ma;
    println!("average current: {:.1} µA", avg_ma * 1000.0);
    for (name, battery) in [
        ("CR2032", Battery::cr2032()),
        ("2xAA lithium", Battery::aa_pair()),
    ] {
        let days = battery.lifetime_days(avg_ma);
        println!(
            "battery life on {name}: {days:.0} days ({:.1} years)",
            days / 365.0
        );
    }
}
