//! The §6 two-way extension: an actuator announces a short receive
//! window after each beacon; the gateway sends a command inside it.
//!
//! ```sh
//! cargo run --example two_way
//! ```

use wile::message::Message;
use wile::registry::DeviceIdentity;
use wile::twoway::{build_twoway_beacon, rx_window_of, RxWindow};
use wile_device::{Mcu, PowerState};
use wile_dot11::mac::SeqControl;
use wile_dot11::mgmt::Beacon;
use wile_dot11::phy::{frame_airtime_us, PhyRate};
use wile_instrument::energy::energy_mj;
use wile_radio::medium::TxParams;
use wile_radio::time::{Duration, Instant};
use wile_radio::{Medium, RadioConfig};

fn main() {
    let mut medium = Medium::new(Default::default(), 2);
    let dev_radio = medium.attach(RadioConfig::default());
    let gw_radio = medium.attach(RadioConfig {
        position_m: (2.0, 0.0),
        ..Default::default()
    });
    let identity = DeviceIdentity::new(9);

    let mut mcu = Mcu::esp32(Instant::ZERO);
    mcu.set_state(PowerState::DeepSleep);
    let model = *mcu.model();

    // Device: wake, beacon with a 3 ms receive window, listen, sleep.
    mcu.wake_from_deep_sleep();
    mcu.wifi_init_inject();
    let window = RxWindow {
        offset_us: 300,
        length_us: 3_000,
    };
    let msg = Message::new(identity.device_id, 0, b"status=ok");
    let frame = build_twoway_beacon(&identity, &msg, window, SeqControl::new(0, 0));
    let rate = PhyRate::WILE_PAPER;
    let airtime = Duration::from_us(frame_airtime_us(rate, frame.len()));
    let (on_air, tx_end) = mcu.transmit(airtime, 0.0);
    medium.transmit(
        dev_radio,
        on_air,
        TxParams {
            airtime,
            power_dbm: 0.0,
            min_snr_db: rate.min_snr_db(),
        },
        frame,
    );

    // Gateway: hears the beacon, reads the window, replies inside it.
    let heard = medium.take_inbox(gw_radio, tx_end + Duration::from_ms(1));
    let beacon = Beacon::new_checked(&heard[0].bytes[..]).expect("wile beacon");
    let win = rx_window_of(&beacon).expect("announced window");
    let (open, close) = win.absolute(heard[0].at);
    println!(
        "gateway: beacon announces rx window {} µs after EOF, {} µs long",
        win.offset_us, win.length_us
    );
    let reply_at = open + Duration::from_us(400);
    medium.transmit(
        gw_radio,
        reply_at,
        TxParams {
            airtime: Duration::from_us(60),
            power_dbm: 0.0,
            min_snr_db: 5.0,
        },
        b"cmd:set-interval=300".to_vec(),
    );

    // Device: light-sleep through the offset, listen only for the window.
    let t_listen_start = mcu.now();
    mcu.stay(PowerState::LightSleep, open.since(mcu.now()));
    mcu.listen(close.since(mcu.now()));
    let downlink: Vec<_> = medium
        .take_inbox(dev_radio, close)
        .into_iter()
        .filter(|f| f.at >= open && f.at <= close)
        .collect();
    mcu.deep_sleep();

    for f in &downlink {
        println!(
            "device: downlink inside window: {:?}",
            String::from_utf8_lossy(&f.bytes)
        );
    }

    // The §6 energy argument: the window costs microjoules, an
    // always-on receiver costs milliwatts.
    let listen_mj = energy_mj(mcu.trace(), &model, t_listen_start, mcu.now());
    let always_on_mj = model.power_mw(PowerState::RadioListen) * 1.0; // 1 s of listening
    println!(
        "device: receive window cost {:.1} µJ; one second of always-on listening would cost {:.1} mJ ({}x)",
        listen_mj * 1000.0,
        always_on_mj,
        (always_on_mj / listen_mj) as u64
    );
}
