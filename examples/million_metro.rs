//! E14: the million-device metro — 100 gateways × 1,000,000 devices ×
//! 1 simulated hour, run twice (`WILE_WORKERS`-style worker counts 1
//! and 4) and checked digest-identical.
//!
//! This is the scale witness for the PR-7 machinery: the hierarchical
//! timer wheel absorbs a million-entry wake train, the spatially
//! sharded medium keeps each gateway's inbox walk to its own
//! neighbourhood of the transmission stream, and the
//! structure-of-arrays fleet keeps per-device state to a few words.
//! Coverage is deliberately sparse (see
//! [`MetroConfig::million`]) — E14 measures scale and determinism, not
//! delivery ratio. Numbers are recorded in EXPERIMENTS.md E14.
//!
//! ```sh
//! cargo run --release --example million_metro
//! # scaled-down smoke (same assertions, ~seconds):
//! WILE_E14_DEVICES=50000 cargo run --release --example million_metro
//! ```

use std::time::Instant as WallInstant;
use wile_scenarios::metro::{run_metro, MetroConfig, MetroReport};

/// Peak resident set size in MiB, if the platform exposes it.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn print_report(tag: &str, report: &MetroReport, wall_s: f64) {
    let stats = &report.stats;
    println!(
        "[workers={tag}] beacons {:>11}  hears {:>9}  delivered {:>9}  \
         peak live tx {:>6}  digest {:#018x}  wall {:>7.2} s",
        report.beacons_sent,
        stats.total_hears(),
        stats.delivered,
        report.peak_live_tx,
        report.delivery_digest,
        wall_s,
    );
    assert!(
        stats.conserves_offered_load(),
        "conservation law violated at workers={tag}"
    );
}

fn main() {
    // WILE_E14_DEVICES scales the grid point down (constant density via
    // `metro_scaled`) for CI smoke; the default is the full E14 config.
    let cfg = match std::env::var("WILE_E14_DEVICES") {
        Ok(v) => {
            let devices: usize = v.parse().expect("WILE_E14_DEVICES must be an integer");
            MetroConfig::metro_scaled(devices, 42)
        }
        Err(_) => MetroConfig::million(42),
    };
    println!(
        "million metro: {} gateways ({}×{} grid, {} m pitch), {} devices, {} s simulated",
        cfg.gateways,
        cfg.gw_cols,
        cfg.gateways.div_ceil(cfg.gw_cols),
        cfg.gw_spacing_m,
        cfg.devices,
        cfg.duration.as_secs_f64(),
    );

    // The determinism contract, executed: the same config at different
    // worker counts must produce byte-identical reports. Worker counts
    // here are explicit (not `available_workers`) so the witness is
    // independent of the host and of the WILE_WORKERS env var.
    let t0 = WallInstant::now();
    let single = run_metro(&cfg, 1);
    let wall_single = t0.elapsed().as_secs_f64();
    print_report("1", &single, wall_single);

    let t1 = WallInstant::now();
    let quad = run_metro(&cfg, 4);
    let wall_quad = t1.elapsed().as_secs_f64();
    print_report("4", &quad, wall_quad);

    assert_eq!(single, quad, "metro reports diverged between worker counts");
    println!(
        "worker identity     ok  (digest {:#018x} at workers=1 and workers=4)",
        single.delivery_digest
    );
    match peak_rss_mib() {
        Some(mib) => println!("peak RSS            {mib:>10.1} MiB"),
        None => println!("peak RSS            (unavailable)"),
    }
}
