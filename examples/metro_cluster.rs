//! E11: the metro cluster — 8 gateways × 20,000 devices × 1 simulated
//! hour through `wile-cluster` on the `wile-sim` kernel.
//!
//! The multi-gateway scalability witness: overlapping coverage means
//! every beacon is heard several times, and the cluster's sharded
//! aggregator folds the copies into exactly-once deliveries while
//! tracking roaming and enforcing bounded lane queues. Prints cluster
//! statistics, the conservation check, wall-clock time and peak RSS
//! (VmHWM from /proc/self/status where available). Numbers are recorded
//! in EXPERIMENTS.md E11.
//!
//! ```sh
//! cargo run --release --example metro_cluster [-- --capture metro.wcap]
//! ```
//!
//! With `--capture PATH`, the exact per-lane frame/arrival stream is
//! recorded to a `.wcap` file that `wile-gatewayd --replay` (or the
//! `gatewayd_replay` example) reproduces byte for byte.

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant as WallInstant;
use wile_gatewayd::capture::{capture_tap, finish_shared, metro_header, CaptureWriter};
use wile_scenarios::metro::{run_metro_with, MetroConfig};
use wile_sim::engine::available_workers;
use wile_telemetry::Telemetry;

/// `--capture PATH` (the only accepted argument).
fn parse_capture_arg() -> Option<PathBuf> {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        None => None,
        Some("--capture") => Some(PathBuf::from(it.next().expect("--capture requires a path"))),
        Some(a) => panic!("unknown argument {a:?} (usage: metro_cluster [--capture PATH])"),
    }
}

/// Peak resident set size in MiB, if the platform exposes it.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let cfg = MetroConfig::metro(42);
    let workers = available_workers();
    println!(
        "metro cluster: {} gateways ({}×{} grid, {} m pitch), {} devices, {} s simulated, {} workers",
        cfg.gateways,
        cfg.gw_cols,
        cfg.gateways.div_ceil(cfg.gw_cols),
        cfg.gw_spacing_m,
        cfg.devices,
        cfg.duration.as_secs_f64(),
        workers,
    );

    let capture = parse_capture_arg();
    let t0 = WallInstant::now();
    let mut tel = Telemetry::new();
    let writer = capture.as_ref().map(|p| {
        let file = BufWriter::new(File::create(p).expect("create capture file"));
        Rc::new(RefCell::new(CaptureWriter::new(file, &metro_header(&cfg))))
    });
    let report = run_metro_with(&cfg, workers, &mut tel, writer.as_ref().map(capture_tap));
    let wall = t0.elapsed();
    if let (Some(w), Some(p)) = (writer, capture) {
        let (_, frames) = finish_shared(w).expect("flush capture");
        println!(
            "capture             {:>12} frames -> {}",
            frames,
            p.display()
        );
    }

    let stats = &report.stats;
    println!(
        "beacons sent        {:>12}\n\
         gateway hears       {:>12}  ({:.2}× coverage overlap)\n\
         delivered           {:>12}  ({:.2}% of beacons, exactly once)\n\
         dedup suppressions  {:>12}\n\
         queue drops         {:>12}\n\
         peak queue depth    {:>12}  (bound {})\n\
         roaming handoffs    {:>12}\n\
         devices tracked     {:>12}\n\
         peak live tx        {:>12}  (bounded-medium witness)\n\
         retired tx          {:>12}\n\
         simulated end       {:>12}",
        report.beacons_sent,
        stats.total_hears(),
        stats.total_hears() as f64 / report.beacons_sent.max(1) as f64,
        stats.delivered,
        report.delivery_ratio() * 100.0,
        stats.total_suppressions(),
        stats.total_drops(),
        stats.max_queue_high_water(),
        cfg.queue_capacity
            .map_or_else(|| "none".into(), |c| c.to_string()),
        stats.handoffs,
        stats.devices_tracked,
        report.peak_live_tx,
        report.retired_tx,
        report.sim_end,
    );
    println!(
        "conservation        {:>12}  (delivered + suppressed + dropped == hears)",
        if stats.conserves_offered_load() {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "per-lane hears      {:?}",
        stats.lanes.iter().map(|l| l.hears).collect::<Vec<_>>()
    );
    println!(
        "per-lane wins       {:?}",
        stats.lanes.iter().map(|l| l.wins).collect::<Vec<_>>()
    );
    println!("delivery digest     {:#018x}", report.delivery_digest);
    println!("wall clock          {:>12.2} s", wall.as_secs_f64());
    match peak_rss_mib() {
        Some(mib) => println!("peak RSS            {:>12.1} MiB", mib),
        None => println!("peak RSS            {:>12}", "(unavailable)"),
    }

    // The deterministic telemetry snapshot (byte-identical at any
    // WILE_WORKERS); wall-clock profiling rows appear under a separate
    // nondeterministic banner when WILE_PROF=1.
    let tel_report = tel.report();
    println!("\n{}", tel_report.render_with_prof());
    println!("telemetry digest    {:#018x}", tel_report.digest());
}
