//! The paper's no-infrastructure deployment: "in environments with no
//! WiFi infrastructure such as farms Wi-LE enables wireless
//! communication directly between IoT devices and a WiFi device such as
//! a smartphone" (§1) — plus the §6 security extension, since farm
//! telemetry crosses open air.
//!
//! Ten encrypted soil sensors report every 10 minutes to a farmhand's
//! phone; the example prints what the phone decodes and estimates
//! battery life per sensor.
//!
//! ```sh
//! cargo run --release --example farm_gateway
//! ```

use wile::prelude::*;
use wile::registry::Registry;
use wile::sensor::{decode_readings, encode_readings, Reading};
use wile_device::battery::Battery;
use wile_radio::time::{Duration, Instant};
use wile_radio::{Medium, RadioConfig};

const SENSORS: u32 = 10;
const REPORTS: usize = 3;
const INTERVAL: Duration = Duration::from_secs(600);

fn main() {
    // Provisioning: one deployment secret shared between the phone and
    // the sensors at install time.
    let registry = Registry::provision_fleet(b"farm-2026-provisioning-secret", SENSORS);

    let mut medium = Medium::new(Default::default(), 33);
    let phone_radio = medium.attach(RadioConfig::default());

    // Sensors scattered 2-6 m around the phone (a barn's worth).
    let mut sensors = Vec::new();
    for id in 1..=SENSORS {
        let angle = id as f64 / SENSORS as f64 * std::f64::consts::TAU;
        let dist = 2.0 + (id as f64 % 5.0);
        let radio = medium.attach(RadioConfig {
            position_m: (dist * angle.cos(), dist * angle.sin()),
            ..Default::default()
        });
        let injector = Injector::new(registry.get(id).unwrap().clone(), Instant::ZERO);
        sensors.push((radio, injector));
    }

    // Each sensor reports REPORTS times, staggered by 1.7 s at install.
    let mut queue = wile_radio::EventQueue::new();
    for (i, _) in sensors.iter().enumerate() {
        queue.schedule(Instant::from_ms(1_700 * (i as u64 + 1)), (i, 0usize));
    }
    let mut horizon = Instant::ZERO;
    while let Some((at, (i, round))) = queue.pop() {
        let (radio, injector) = &mut sensors[i];
        injector.sleep_until(at);
        let reading = encode_readings(&[
            Reading::TemperatureCentiC(1800 + (i as i16 * 37) % 600),
            Reading::HumidityPerMille(400 + (i as u16 * 53) % 300),
            Reading::BatteryMv(3000 - round as u16 * 2),
        ]);
        let report = injector.inject_sealed(&mut medium, *radio, &reading);
        horizon = horizon.max(report.t_sleep);
        if round + 1 < REPORTS {
            queue.schedule(at + INTERVAL, (i, round + 1));
        }
    }

    // The phone decrypts against the registry.
    let mut phone = Gateway::new();
    let got = phone.poll_decrypt(
        &mut medium,
        phone_radio,
        horizon + Duration::from_secs(1),
        &registry,
        0,
    );
    println!(
        "phone received {} encrypted reports from {} sensors:\n",
        got.len(),
        SENSORS
    );
    for rx in &got {
        let readings = decode_readings(&rx.payload).expect("sensor codec");
        print!(
            "  sensor {:>2} seq {} @ {:>7.1} s  rssi {:>6.1} dBm :",
            rx.device_id,
            rx.seq,
            rx.at.as_secs_f64(),
            rx.rssi_dbm
        );
        for r in readings {
            print!("  {r}");
        }
        println!();
    }
    let stats = phone.stats();
    println!(
        "\ngateway stats: {} frames, {} delivered, {} duplicates, {} undecryptable/foreign",
        stats.frames_seen,
        stats.delivered,
        stats.duplicates,
        stats.foreign_beacons + stats.reassembly_failures
    );

    // Battery life at this duty cycle, using the full-wake-cycle cost
    // (honest ESP32 numbers, not the ASIC projection).
    let row = wile_scenarios::wile_sc::full_cycle_row();
    let avg_ma = row.average_current_ma(INTERVAL.as_secs_f64());
    for (name, battery) in [
        ("CR2032 coin cell", Battery::cr2032()),
        ("2×AA lithium", Battery::aa_pair()),
    ] {
        println!(
            "battery life on {name}: {:.0} days at one report per 10 min (avg {:.1} µA)",
            battery.lifetime_days(avg_ma),
            avg_ma * 1000.0
        );
    }
}
