//! Replay a `.wcap` capture through the gatewayd core and verify the
//! determinism contract end to end.
//!
//! With a path argument, replays that capture file and prints the
//! report. With no arguments, runs the full round trip in-process as a
//! self-contained demo: record a smoke-scale metro run to an in-memory
//! capture, replay it through [`wile_gatewayd::GatewaydCore`], and
//! assert the delivery digest, counters, and eviction list reproduce
//! the in-process run byte for byte.
//!
//! ```sh
//! cargo run --release --example gatewayd_replay [CAPTURE.wcap]
//! ```

use wile_gatewayd::capture::{capture_metro, read_capture, replay_capture};
use wile_gatewayd::GatewaydReport;
use wile_scenarios::metro::MetroConfig;

fn print_report(r: &GatewaydReport) {
    println!(
        "replay: {} gateways, {} frames in ({} rejected, {} late), {} polls",
        r.gateways, r.frames_in, r.rejected, r.late, r.polls
    );
    println!(
        "        {} delivered, {} handoffs, {} evicted, {} queue drops",
        r.stats.delivered,
        r.stats.handoffs,
        r.evicted.len(),
        r.stats.total_drops()
    );
    println!("        digest {:#018x}", r.delivery_digest);
    println!(
        "        frame ledger {}",
        if r.frames_ledger_closes() {
            "closed"
        } else {
            "OPEN — accounting violated"
        }
    );
}

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let bytes = std::fs::read(&path).expect("read capture file");
        let (header, frames) = read_capture(&bytes).expect("parse capture");
        println!(
            "capture: {} — {} gateways, seed {}, {} frames, horizon {} s",
            path,
            header.gateways,
            header.seed,
            frames.len(),
            header.horizon.as_secs_f64(),
        );
        let report = replay_capture(&bytes, false, 1).expect("replay");
        print_report(&report);
        return;
    }

    // Self-contained round trip: record → replay → byte-identity.
    let cfg = MetroConfig::smoke(42);
    println!(
        "recording smoke metro: {} gateways, {} devices, {} s simulated (seed {})",
        cfg.gateways,
        cfg.devices,
        cfg.duration.as_secs_f64(),
        cfg.seed
    );
    let (metro, bytes, frames) = capture_metro(&cfg, 1, Vec::new()).expect("capture");
    println!(
        "capture: {} frames, {} bytes ({:.1} B/frame)",
        frames,
        bytes.len(),
        bytes.len() as f64 / frames.max(1) as f64
    );

    let report = replay_capture(&bytes, true, 1).expect("replay");
    print_report(&report);

    assert!(
        report.matches_metro(&metro),
        "replay must reproduce the in-process run byte for byte"
    );
    println!(
        "identity: replay == in-process metro (digest {:#018x}) ✓",
        metro.delivery_digest
    );
}
