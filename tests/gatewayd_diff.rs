//! The gatewayd differential oracle: a recorded scenario replayed
//! through the ingestion service reproduces the in-process cluster
//! **byte for byte**.
//!
//! The contract under test is the whole point of the subsystem: the
//! service front-end (framed transport, staging, watermark-driven poll
//! train) adds *zero* behavioral surface over the library pipeline.
//! For each seed, the metro scenario runs once with a `.wcap` recorder
//! tapped into its raw per-lane frame stream; the capture then replays
//! through a fresh [`GatewaydCore`] and must reproduce the full
//! delivery stream, every cluster counter, the eviction list, and the
//! FNV-1a delivery digest — exactly, not approximately.

use std::io::Read;
use wile_gatewayd::capture::{capture_metro, replay_capture};
use wile_gatewayd::daemon::{Daemon, DaemonOptions};
use wile_scenarios::metro::MetroConfig;

/// Record a smoke-scale metro run (full delivery retention) and return
/// the report plus the capture bytes.
fn record(seed: u64) -> (wile_scenarios::metro::MetroReport, Vec<u8>) {
    let cfg = MetroConfig::smoke(seed);
    assert!(cfg.keep_deliveries, "diff needs the full delivery stream");
    let (report, bytes, frames) = capture_metro(&cfg, 1, Vec::new()).expect("in-memory capture");
    assert!(frames > 0, "capture must record frames (seed {seed})");
    (report, bytes)
}

fn assert_replay_identical(seed: u64) {
    let (metro, bytes) = record(seed);
    let replay = replay_capture(&bytes, true, 1).expect("replay");
    assert_eq!(
        replay.delivery_digest, metro.delivery_digest,
        "digest mismatch (seed {seed})"
    );
    assert_eq!(
        replay.deliveries, metro.deliveries,
        "delivery stream mismatch (seed {seed})"
    );
    assert_eq!(replay.stats, metro.stats, "counter mismatch (seed {seed})");
    assert_eq!(
        replay.evicted, metro.evicted,
        "eviction mismatch (seed {seed})"
    );
    assert!(replay.matches_metro(&metro), "full identity (seed {seed})");
    assert_eq!(replay.rejected, 0, "clean capture must not be rejected");
    assert_eq!(replay.late, 0, "clean capture has no post-horizon frames");
    assert!(replay.frames_ledger_closes(), "frame ledger (seed {seed})");
}

#[test]
fn replay_is_byte_identical_seed_42() {
    assert_replay_identical(42);
}

#[test]
fn replay_is_byte_identical_seed_7() {
    assert_replay_identical(7);
}

#[test]
fn replay_is_byte_identical_seed_9() {
    assert_replay_identical(9);
}

/// Worker-count invariance carries through the service: replaying with
/// more aggregation workers changes nothing.
#[test]
fn replay_is_worker_count_invariant() {
    let (_, bytes) = record(42);
    let one = replay_capture(&bytes, true, 1).expect("replay x1");
    let four = replay_capture(&bytes, true, 4).expect("replay x4");
    assert_eq!(one, four);
}

/// A reader that tears the stream into awkward 7-byte reads — every
/// record boundary, length prefix, and frame body gets split.
struct Torn<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Read for Torn<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = 7.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// The daemon shell (decoder, staging, drain-at-EOF) over a maximally
/// torn transport still lands on the identical report.
#[test]
fn daemon_over_torn_transport_is_byte_identical() {
    let (metro, bytes) = record(42);
    let mut daemon = Daemon::new(
        DaemonOptions {
            workers: 1,
            keep_deliveries: true,
            config: None,
        },
        None,
    )
    .expect("daemon");
    let report = daemon
        .serve_reader(Torn {
            bytes: &bytes,
            pos: 0,
        })
        .expect("serve");
    assert!(report.matches_metro(&metro), "torn-transport identity");
    assert_eq!(report.delivery_digest, metro.delivery_digest);
}
