//! Long-horizon integration: a simulated day of deployment — the scale
//! the paper's battery-life claims live at.

use wile::prelude::*;
use wile_device::battery::Battery;
use wile_instrument::energy::energy_mj;
use wile_radio::time::{Duration, Instant};
use wile_radio::{Medium, RadioConfig};

/// One day at the paper's motivating duty cycle ("periodically wakes up
/// (e.g., every 10 minutes) to send its temperature reading"): 144
/// injections, all delivered, energy ledger consistent with the
/// average-power model.
#[test]
fn one_simulated_day_of_wile() {
    let mut medium = Medium::new(Default::default(), 201);
    let sensor = medium.attach(RadioConfig::default());
    let phone = medium.attach(RadioConfig {
        position_m: (3.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(7), Instant::ZERO);
    let model = inj.model();

    let interval = Duration::from_secs(600);
    let rounds: usize = 144;
    for i in 0..rounds {
        inj.sleep_until(Instant::from_secs(30) + interval.mul(i as u64));
        inj.inject(&mut medium, sensor, format!("round {i}").as_bytes());
    }
    let day_end = Instant::from_secs(30) + interval.mul(rounds as u64);
    inj.sleep_until(day_end);

    // All 144 readings arrive, in order, none duplicated.
    let mut gw = Gateway::new();
    let got = gw.poll(&mut medium, phone, day_end);
    assert_eq!(got.len(), rounds);
    for (i, r) in got.iter().enumerate() {
        assert_eq!(r.seq as usize, i);
    }
    assert_eq!(gw.stats().duplicates, 0);
    assert_eq!(gw.stats().bad_fcs, 0);

    // Daily energy ledger: 144 wake cycles + deep-sleep floor.
    let day_mj = energy_mj(inj.trace(), &model, Instant::ZERO, day_end);
    let per_cycle = wile_scenarios::wile_sc::full_cycle_row();
    let expected = per_cycle.energy_per_packet_mj * rounds as f64
        + model.power_mw(wile_device::PowerState::DeepSleep) * 86_400.0;
    assert!(
        (day_mj - expected).abs() / expected < 0.02,
        "day {day_mj:.0} mJ vs expected {expected:.0} mJ"
    );

    // That daily budget on a pair of AA lithiums: years of life.
    let avg_ma = day_mj / model.supply_v / 86_400.0;
    assert!(Battery::aa_pair().lifetime_years(avg_ma) > 2.0);
    // …and the same day on WiFi-PS idle alone would kill the cells in
    // about a month.
    let ps_idle_ma = 4.5;
    assert!(Battery::aa_pair().lifetime_days(ps_idle_ma) < 40.0);
}

/// A 100-device staggered fleet completes a round without loss and the
/// medium's bookkeeping stays consistent.
#[test]
fn hundred_device_round() {
    let out = wile::sched::run_fleet(&wile::sched::FleetConfig {
        devices: 100,
        rounds: 2,
        drift: Some(31),
        synchronized_start: false,
        period: Duration::from_secs(300),
        radius_m: 6.0,
    });
    assert_eq!(out.injected, 200);
    assert!(out.delivery_ratio() > 0.97, "{}", out.delivery_ratio());
}

/// Sequence numbers survive a wrap (65 536 messages) with dedup intact
/// across an epoch clear.
#[test]
fn sequence_wrap_behaviour() {
    let mut medium = Medium::new(Default::default(), 202);
    let sensor = medium.attach(RadioConfig::default());
    let phone = medium.attach(RadioConfig {
        position_m: (1.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
    // Jump the counter near the wrap point (private field — emulate by
    // injecting twice after forcing epoch via public API):
    let mut gw = Gateway::new();
    let mut t = Instant::from_secs(1);
    // Surrogate: run 40 injections spanning an artificial epoch clear.
    for i in 0..40 {
        inj.sleep_until(t);
        inj.inject(&mut medium, sensor, &[i as u8]);
        t += Duration::from_secs(1);
        if i == 19 {
            // Epoch boundary on the gateway.
            let got = gw.poll(&mut medium, phone, t);
            assert_eq!(got.len(), 20);
            gw.clear_dedup();
        }
    }
    let got = gw.poll(&mut medium, phone, t + Duration::from_secs(1));
    assert_eq!(got.len(), 20);
    assert_eq!(gw.stats().delivered, 40);
}

/// The fault injector at smoltcp's suggested 15 % corruption rate:
/// delivery degrades gracefully, never crashes, stats reconcile.
#[test]
fn smoltcp_style_fault_rates() {
    use wile_radio::medium::TxParams;
    use wile_radio::FaultInjector;
    let mut medium = Medium::new(Default::default(), 203);
    let sensor = medium.attach(RadioConfig::default());
    let phone = medium.attach(RadioConfig {
        position_m: (2.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
    let n = 100usize;
    for i in 0..n {
        inj.sleep_until(Instant::from_secs(1 + i as u64));
        inj.inject(&mut medium, sensor, b"reading");
    }
    let mut fault = FaultInjector::new(0.0, 0.15, 99);
    let mut gw = Gateway::new();
    let mut delivered = 0usize;
    for rx in medium.take_inbox(phone, Instant::from_secs(1000)) {
        let mut bytes = rx.bytes.to_vec();
        fault.apply(&mut bytes);
        let mut relay = Medium::new(Default::default(), 1);
        let a = relay.attach(RadioConfig::default());
        let _b = relay.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        relay.transmit(
            a,
            Instant::from_ms(1),
            TxParams {
                airtime: Duration::from_us(50),
                power_dbm: 0.0,
                min_snr_db: 5.0,
            },
            bytes,
        );
        delivered += gw
            .poll(&mut relay, wile_radio::RadioId(1), Instant::from_secs(1))
            .len();
    }
    let stats = gw.stats();
    assert_eq!(stats.frames_seen as usize, n);
    assert_eq!(stats.bad_fcs as usize + delivered, n);
    // ~15 % corrupted: between 5 and 30 out of 100.
    assert!(
        (5..=30).contains(&(stats.bad_fcs as usize)),
        "{}",
        stats.bad_fcs
    );
}
