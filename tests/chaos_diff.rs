//! Differential acceptance tests for the infrastructure chaos layer,
//! in the style of `cluster_diff.rs`:
//!
//! * the chaos path with an **empty** fault plan must reproduce plain
//!   [`wile_scenarios::metro::run_metro`] byte-for-byte — report and
//!   FNV delivery digest — across seeds and worker counts (the fault
//!   machinery must cost nothing when unarmed);
//! * every **faulted** run must hold the extended conservation law and
//!   at-most-once delivery, be byte-identical across worker counts, and
//!   show checkpoint-based recovery within the E13 window.

use wile_radio::time::Duration;
use wile_scenarios::chaos::{run_chaos, ChaosConfig};
use wile_scenarios::metro::{run_metro, MetroConfig};

#[test]
fn empty_plan_chaos_is_byte_identical_to_plain_metro() {
    for seed in [42u64, 7, 9] {
        for workers in [1usize, 4] {
            let metro = run_metro(&MetroConfig::smoke(seed), workers);
            let chaos = run_chaos(&ChaosConfig::no_faults(MetroConfig::smoke(seed)), workers);
            assert_eq!(
                chaos.metro, metro,
                "chaos(empty) diverges from metro (seed {seed}, workers {workers})"
            );
            assert_eq!(
                chaos.metro.delivery_digest, metro.delivery_digest,
                "digest diverges (seed {seed}, workers {workers})"
            );
            assert!(chaos.phases.is_empty());
            assert!(chaos.lane_events.is_empty());
            assert_eq!(chaos.duplicate_deliveries, 0);
        }
    }
}

#[test]
fn faulted_chaos_conserves_and_is_worker_count_independent() {
    for seed in [42u64, 7] {
        let cfg = ChaosConfig::smoke(seed);
        let base = run_chaos(&cfg, 1);
        // The runner itself asserts conservation after every poll and
        // at-most-once at the end; re-state the ledger here as the
        // acceptance criterion.
        let s = &base.metro.stats;
        assert_eq!(
            s.delivered
                + s.total_suppressions()
                + s.total_drops()
                + s.total_shed()
                + s.total_lost_in_crash(),
            s.total_hears(),
            "extended conservation (seed {seed}): {s:?}"
        );
        assert_eq!(base.duplicate_deliveries, 0, "seed {seed}");
        for workers in [2usize, 4] {
            let got = run_chaos(&cfg, workers);
            assert_eq!(
                base, got,
                "chaos report diverges at {workers} workers (seed {seed})"
            );
        }
    }
}

#[test]
fn smoke_chaos_exercises_every_fault_mechanism_for_real() {
    // Guard against vacuous invariants above: every fault mechanism
    // must actually bite in the smoke campaign.
    let r = run_chaos(&ChaosConfig::smoke(42), 2);
    let s = &r.metro.stats;
    assert!(s.total_lost_in_crash() > 0, "crash never bit: {s:?}");
    assert!(s.total_shed() > 0, "shed paths never bit: {s:?}");
    assert!(s.checkpoints > 0, "no checkpoints taken: {s:?}");
    assert!(s.recovered > 0, "no orphan re-elections: {s:?}");
    assert_eq!(s.lanes[0].crashes, 1, "{s:?}");
    assert_eq!(s.lanes[0].restarts, 1, "{s:?}");
    assert!(
        !r.lane_events.is_empty(),
        "no lane transitions were recorded"
    );
    // And the campaign still delivered the vast majority of traffic.
    assert!(s.delivered > 0);
}

#[test]
fn crashed_lane_recovers_within_the_reported_window() {
    // E13's recovery claim: after a checkpoint-restored restart, the
    // lane wins deliveries again within two poll intervals.
    let cfg = ChaosConfig::smoke(42);
    let r = run_chaos(&cfg, 1);
    assert_eq!(r.recoveries.len(), 1, "{:?}", r.recoveries);
    let rec = &r.recoveries[0];
    assert_eq!(rec.lane, 0);
    assert!(rec.restored, "checkpoint cadence covers the crash window");
    let lag = rec
        .recovery_after_restart()
        .expect("lane must win again before the horizon");
    assert!(
        lag <= cfg.metro.poll_every.mul(2),
        "recovery took {lag:?}, window is {:?}",
        cfg.metro.poll_every.mul(2)
    );
}

#[test]
fn cold_restart_still_recovers_but_re_suppresses_nothing() {
    // Without checkpoints the restart comes up cold; recovery must
    // still happen (ownership re-election does not depend on lane
    // state) and at-most-once must still hold because the aggregator's
    // dedup outlives every lane.
    let mut cfg = ChaosConfig::smoke(7);
    cfg.checkpoint_every = None;
    let r = run_chaos(&cfg, 1);
    assert_eq!(r.metro.stats.checkpoints, 0);
    assert_eq!(r.duplicate_deliveries, 0);
    assert_eq!(r.recoveries.len(), 1);
    assert!(!r.recoveries[0].restored, "no checkpoint to restore");
    assert!(r.recoveries[0].recovered_at.is_some());
}

#[test]
fn longer_checkpoint_cadence_changes_restore_mode_only_deterministically() {
    // A cadence longer than the run means no checkpoint exists at the
    // crash; the restart is cold but everything still conserves.
    let mut cfg = ChaosConfig::smoke(9);
    cfg.checkpoint_every = Some(Duration::from_secs(100_000));
    let r = run_chaos(&cfg, 1);
    assert_eq!(r.metro.stats.checkpoints, 0);
    assert!(!r.recoveries[0].restored);
    assert!(r.metro.stats.conserves_offered_load());
    assert_eq!(r.duplicate_deliveries, 0);
}
