//! Integration: multi-device behaviour — the §6 fleet, gateway
//! aggregation, and mixed traffic.

use wile::prelude::*;
use wile::sched::{run_fleet, FleetConfig};
use wile_radio::time::{Duration, Instant};
use wile_radio::{Medium, RadioConfig};

#[test]
fn big_staggered_fleet_delivers_everything() {
    let out = run_fleet(&FleetConfig {
        devices: 20,
        rounds: 6,
        drift: Some(9),
        synchronized_start: false,
        period: Duration::from_secs(60),
        radius_m: 4.0,
    });
    assert_eq!(out.injected, 120);
    assert_eq!(out.delivery_ratio(), 1.0);
}

#[test]
fn synchronized_fleet_recovers_within_a_few_rounds() {
    let out = run_fleet(&FleetConfig {
        devices: 6,
        rounds: 20,
        drift: Some(4),
        synchronized_start: true,
        period: Duration::from_secs(60),
        ..Default::default()
    });
    // Round 0 collides heavily…
    assert!(
        out.delivered_per_round[0] <= 2,
        "round0 {}",
        out.delivered_per_round[0]
    );
    // …but the tail runs clean.
    let tail: usize = out.delivered_per_round[15..].iter().sum();
    assert!(tail >= 5 * 6 - 3, "tail {tail}");
}

#[test]
fn gateway_distinguishes_many_devices() {
    // §6: unique identifiers distinguish interleaved streams.
    let mut medium = Medium::new(Default::default(), 70);
    let gw_radio = medium.attach(RadioConfig::default());
    let mut injectors: Vec<(wile_radio::RadioId, Injector)> = (1..=5u32)
        .map(|id| {
            let r = medium.attach(RadioConfig {
                position_m: (2.0, id as f64),
                ..Default::default()
            });
            (r, Injector::new(DeviceIdentity::new(id), Instant::ZERO))
        })
        .collect();
    // Three interleaved rounds, staggered 2 s apart.
    let mut t = Instant::from_secs(1);
    for round in 0..3 {
        for (i, (radio, inj)) in injectors.iter_mut().enumerate() {
            inj.sleep_until(t);
            inj.inject(
                &mut medium,
                *radio,
                format!("d{}r{round}", i + 1).as_bytes(),
            );
            t += Duration::from_secs(2);
        }
    }
    let mut gw = Gateway::new();
    let got = gw.poll(&mut medium, gw_radio, t + Duration::from_secs(2));
    assert_eq!(got.len(), 15);
    for rx in &got {
        let expect = format!("d{}r{}", rx.device_id, rx.seq);
        assert_eq!(rx.payload, expect.as_bytes());
    }
    // Every device contributed exactly 3.
    for id in 1..=5u32 {
        assert_eq!(got.iter().filter(|r| r.device_id == id).count(), 3);
    }
}

#[test]
fn per_device_seq_spaces_are_independent() {
    // Two devices both at seq 0 must not collide in dedup.
    let mut medium = Medium::new(Default::default(), 71);
    let gw_radio = medium.attach(RadioConfig::default());
    let r1 = medium.attach(RadioConfig {
        position_m: (1.0, 0.0),
        ..Default::default()
    });
    let r2 = medium.attach(RadioConfig {
        position_m: (0.0, 1.0),
        ..Default::default()
    });
    let mut a = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
    let mut b = Injector::new(DeviceIdentity::new(2), Instant::ZERO);
    a.inject(&mut medium, r1, b"from-a");
    b.sleep_until(Instant::from_secs(2));
    b.inject(&mut medium, r2, b"from-b");
    let mut gw = Gateway::new();
    let got = gw.poll(&mut medium, gw_radio, Instant::from_secs(5));
    assert_eq!(got.len(), 2);
    assert_eq!(gw.stats().duplicates, 0);
}

#[test]
fn fleet_scales_to_fifty_devices() {
    let out = run_fleet(&FleetConfig {
        devices: 50,
        rounds: 3,
        drift: Some(2),
        synchronized_start: false,
        period: Duration::from_secs(120),
        radius_m: 5.0,
    });
    assert_eq!(out.injected, 150);
    assert!(out.delivery_ratio() > 0.95, "{}", out.delivery_ratio());
}
