//! Regression tests pinning every paper artifact to its acceptance
//! band (the per-experiment index of DESIGN.md; deltas recorded in
//! EXPERIMENTS.md).

use wile_scenarios::{ablation, fig3, fig4, table1};

/// E3 — Table 1, all four columns.
#[test]
fn e3_table1_within_bands() {
    let t = table1::table1();
    let checks = [
        (&t.wile, 0.084, 0.15),
        (&t.ble, 0.071, 0.15),
        (&t.wifi_dc, 238.2, 0.20),
        (&t.wifi_ps, 19.8, 0.20),
    ];
    for (col, paper_mj, band) in checks {
        let rel = (col.energy_per_packet_mj - paper_mj).abs() / paper_mj;
        assert!(
            rel < band,
            "{}: measured {:.3} mJ vs paper {paper_mj} mJ (rel {rel:.3})",
            col.name,
            col.energy_per_packet_mj
        );
    }
    // Idle currents are model inputs and must match exactly.
    assert_eq!(t.wile.idle_current_ma, 0.0025);
    assert_eq!(t.ble.idle_current_ma, 0.0011);
    assert_eq!(t.wifi_dc.idle_current_ma, 0.0025);
    assert_eq!(t.wifi_ps.idle_current_ma, 4.5);
}

/// E1 — Figure 3a phase timeline.
#[test]
fn e1_fig3a_phases() {
    let p = fig3::fig3a();
    // Paper: sleep to 0.2 s; init 0.2–0.85 s; assoc 0.85–1.15 s;
    // DHCP/ARP until near 1.75 s; then Tx and sleep.
    let sleep = p.phase_duration_s("Sleep").unwrap();
    let init = p.phase_duration_s("MC/WiFi init").unwrap();
    let assoc = p.phase_duration_s("Probe/Auth./Associate").unwrap();
    let dhcp = p.phase_duration_s("DHCP/ARP").unwrap();
    assert!((sleep - 0.2).abs() < 0.01, "sleep {sleep}");
    assert!((init - 0.65).abs() < 0.05, "init {init}");
    assert!((0.22..=0.40).contains(&assoc), "assoc {assoc}");
    assert!((0.35..=0.75).contains(&dhcp), "dhcp {dhcp}");
    // Total active roughly matches the figure's ~1.4 s envelope.
    let total = init + assoc + dhcp;
    assert!((1.2..=1.7).contains(&total), "total {total}");
}

/// E2 — Figure 3b: shorter init, single spike, long sleep.
#[test]
fn e2_fig3b_shape() {
    let p = fig3::fig3b();
    let init = p.phase_duration_s("MC/WiFi init").unwrap();
    assert!((0.4..=0.55).contains(&init), "init {init}");
    // §5.2: "this step is shorter when compared with the WiFi case."
    let a = fig3::fig3a();
    assert!(
        init < a.phase_duration_s("MC/WiFi init").unwrap()
            + a.phase_duration_s("Probe/Auth./Associate").unwrap()
    );
    // The TX phase is microseconds.
    let tx = p.phase_duration_s("Tx").unwrap();
    assert!(tx < 0.001, "tx {tx}");
}

/// E4 — Figure 4: curve shapes, crossover, separations.
#[test]
fn e4_fig4_shape() {
    let t = table1::table1();
    let f = fig4::fig4_from(&t, &fig4::default_grid());

    // A WiFi-PS/WiFi-DC crossover exists (the §5.5 claim); with the
    // paper's own Table 1 numbers it computes to ≈0.27 min.
    let x = f.ps_dc_crossover_min().expect("crossover");
    assert!((0.15..=0.45).contains(&x), "crossover {x} min");

    // Wi-LE ≈ BLE (within 3×) everywhere.
    let wile = f.curve("Wi-LE").unwrap();
    let ble = f.curve("BLE").unwrap();
    for (w, b) in wile.points.iter().zip(&ble.points) {
        assert!(w.1 / b.1 < 3.0, "at {} min", w.0);
    }

    // Wi-LE at least 2 orders below the best WiFi everywhere plotted,
    // ≥2.5 orders at 1 min (the paper's "about 3 orders" is the
    // mid-sweep value).
    for &m in &[0.5, 1.0, 2.0, 3.0, 5.0] {
        assert!(f.wifi_to_wile_ratio(m) > 90.0, "{m} min");
    }
    assert!(f.wifi_to_wile_ratio(1.0) > 316.0);
}

/// E5 — §3.1 frame counting (20 MAC + 7 higher-layer).
#[test]
fn e5_connection_frame_count() {
    let run = wile_scenarios::wifi_dc::run(&Default::default());
    assert!(run.outcome.connected);
    // 7 connection-establishment higher-layer frames + 1 sensor payload.
    assert_eq!(run.outcome.higher_layer_frames, 8);
    assert!(
        (20..=30).contains(&run.outcome.mac_frames),
        "mac {}",
        run.outcome.mac_frames
    );
}

/// E6 — §6 clock-jitter decorrelation.
#[test]
fn e6_jitter_decorrelation() {
    let (ideal, drifting) = ablation::drift_ablation(4, 12);
    assert!(ideal.delivery_ratio < 0.1);
    assert!(drifting.tail_ratio > 0.8);
}

/// Ablation sanity: the ASIC projection undercuts BLE-per-event scale.
#[test]
fn ablation_asic_endpoint() {
    let asic = ablation::asic_full_cycle();
    let uj = asic.energy_per_packet_mj * 1000.0;
    // Full cycle on an ASIC: a few hundred µJ at most (vs 93 000 µJ on
    // the ESP32 full cycle); the paper predicts "much lower power
    // consumption" and this quantifies it.
    assert!(uj < 350.0, "{uj}");
}

/// Cross-check: Eq. (1) against an hour-long simulated trace.
#[test]
fn eq1_cross_validation() {
    use wile_instrument::energy::energy_mj;
    use wile_radio::time::Instant;
    let runs = 30usize;
    let run = wile_scenarios::wile_sc::run(runs, b"t=21.5C", 120);
    let model = run.injector.model();
    let start = Instant::from_ms(200);
    let end = start + wile_radio::time::Duration::from_secs(120 * runs as u64);
    let sim_mw = energy_mj(run.injector.trace(), &model, start, end) / (120.0 * runs as f64);
    let eq1_mw = wile_scenarios::wile_sc::full_cycle_row().average_power_mw(120.0);
    assert!(
        (sim_mw - eq1_mw).abs() / eq1_mw < 0.03,
        "sim {sim_mw} eq1 {eq1_mw}"
    );
}
