//! Acceptance tests for the deterministic parallel run engine: fanning
//! the PR-1 fault campaign across worker threads must be byte-for-byte
//! identical to running it serially — same reports, same rendered text
//! — for every worker count, because each cell owns its seeded world
//! and results merge in input order.

use wile::reliability::{AdaptiveConfig, EnergyBudget, RepeatPolicy};
use wile_radio::time::Duration;
use wile_scenarios::campaign::{
    run_campaign, run_campaigns, run_with_baseline, run_with_baseline_par, AdaptMode,
    CampaignConfig,
};

fn feedback_mode() -> AdaptMode {
    AdaptMode::Feedback {
        cfg: AdaptiveConfig {
            target_delivery: 0.9,
            base: RepeatPolicy::SINGLE,
            budget: EnergyBudget {
                per_message_uj_ceiling: 800.0,
                per_copy_uj: 100.0,
            },
            backoff_step: Duration::from_secs(1),
            max_backoff: Duration::from_secs(8),
        },
        every: 2,
    }
}

#[test]
fn parallel_campaign_batch_is_byte_identical_to_serial() {
    let cfgs: Vec<CampaignConfig> = [42u64, 7, 9]
        .iter()
        .map(|&seed| CampaignConfig::demo(seed, feedback_mode()))
        .collect();
    let serial: Vec<_> = cfgs.iter().map(run_campaign).collect();

    for workers in [1usize, 2, 8] {
        let parallel = run_campaigns(&cfgs, workers);
        assert_eq!(serial, parallel, "reports diverge at {workers} workers");
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.render(),
                p.render(),
                "rendered text diverges at {workers} workers"
            );
        }
    }

    // The three seeds must produce three different worlds — otherwise
    // the equality above would be vacuous.
    assert_ne!(serial[0].render(), serial[1].render());
    assert_ne!(serial[1].render(), serial[2].render());
}

#[test]
fn parallel_baseline_pair_matches_serial() {
    let cfg = CampaignConfig::demo(42, feedback_mode());
    let (adaptive, baseline) = run_with_baseline(&cfg);
    for workers in [1usize, 2, 8] {
        let (a, b) = run_with_baseline_par(&cfg, workers);
        assert_eq!(adaptive, a);
        assert_eq!(baseline, b);
    }
}

#[test]
fn worker_env_override_is_respected() {
    // WILE_WORKERS only changes *how many threads* the engine uses —
    // never the output. (Set per-process here; test binaries run tests
    // in one process, so keep the variable's lifetime to this test.)
    std::env::set_var("WILE_WORKERS", "3");
    let n = wile_sim::engine::available_workers();
    std::env::remove_var("WILE_WORKERS");
    assert_eq!(n, 3);
}
