//! The telemetry differential guarantee, end to end:
//!
//! 1. **Observation changes nothing.** Running the metro scenario (and
//!    a fault campaign) with telemetry enabled produces a report that
//!    is `==` (bit-identical — [`MetroReport`] derives `PartialEq`
//!    over every counter, delivery, and digest) to the
//!    telemetry-disabled run.
//! 2. **Snapshots are worker-count independent.** The rendered
//!    [`TelemetryReport`] — and therefore its FNV digest — is
//!    byte-identical at 1, 4, and 8 aggregation workers, across seeds,
//!    because per-shard registries merge in shard order and every
//!    instrument is integer-valued (order-free addition).

use wile::reliability::{AdaptiveConfig, EnergyBudget, RepeatPolicy};
use wile_radio::time::Duration;
use wile_scenarios::campaign::{run_campaign, run_campaign_telemetry, AdaptMode, CampaignConfig};
use wile_scenarios::metro::{run_metro, run_metro_with_telemetry, MetroConfig};
use wile_telemetry::Telemetry;

const SEEDS: [u64; 3] = [42, 7, 9];

fn feedback_mode() -> AdaptMode {
    AdaptMode::Feedback {
        cfg: AdaptiveConfig {
            target_delivery: 0.9,
            base: RepeatPolicy::SINGLE,
            budget: EnergyBudget {
                per_message_uj_ceiling: 800.0,
                per_copy_uj: 100.0,
            },
            backoff_step: Duration::from_secs(1),
            max_backoff: Duration::from_secs(8),
        },
        every: 2,
    }
}

#[test]
fn metro_report_is_identical_with_and_without_telemetry() {
    for seed in SEEDS {
        let cfg = MetroConfig::smoke(seed);
        let plain = run_metro(&cfg, 2);
        let mut tel = Telemetry::with_trace();
        let observed = run_metro_with_telemetry(&cfg, 2, &mut tel);
        assert_eq!(plain, observed, "seed {seed}: telemetry steered the run");
        // And the instrumented run actually recorded the world it saw.
        let reg = tel.registry();
        assert_eq!(
            reg.counter("metro.beacons_sent", &[]),
            Some(observed.beacons_sent),
            "seed {seed}"
        );
        assert_eq!(
            reg.counter("cluster.delivered", &[]),
            Some(observed.stats.delivered),
            "seed {seed}"
        );
        assert_eq!(reg.counter("cluster.conservation.holds", &[]), Some(1));
        assert!(
            reg.counter("kernel.events_dispatched", &[]).unwrap() > 0,
            "seed {seed}"
        );
        assert!(!tel.trace().is_empty(), "seed {seed}: trace not recorded");
    }
}

#[test]
fn metro_telemetry_digest_is_worker_count_independent() {
    for seed in SEEDS {
        let cfg = MetroConfig::smoke(seed);
        let run = |workers: usize| {
            let mut tel = Telemetry::new();
            let report = run_metro_with_telemetry(&cfg, workers, &mut tel);
            (report, tel.report())
        };
        let (base_report, base_tel) = run(1);
        for workers in [4, 8] {
            let (report, tel) = run(workers);
            assert_eq!(report, base_report, "seed {seed} workers {workers}");
            assert_eq!(
                tel.render(),
                base_tel.render(),
                "seed {seed} workers {workers}: snapshot text diverged"
            );
            assert_eq!(
                tel.digest(),
                base_tel.digest(),
                "seed {seed} workers {workers}"
            );
        }
    }
}

#[test]
fn campaign_report_is_identical_with_and_without_telemetry() {
    let cfg = CampaignConfig::demo(42, feedback_mode());
    let plain = run_campaign(&cfg);
    let (observed, tel) = run_campaign_telemetry(&cfg);
    assert_eq!(plain, observed, "telemetry steered the campaign");
    // dev.cycle spans closed into the span histogram, sim-time stamped.
    let spans = tel
        .registry()
        .histogram("span_ns", &[("span", "dev.cycle".into())])
        .expect("dev.cycle spans recorded");
    assert!(spans.count() > 0);
    // The JSONL trace starts with the schema-versioned header.
    let jsonl = tel.trace().to_jsonl();
    let header = jsonl.lines().next().unwrap();
    assert!(header.contains("\"schema\":\"wile.run-trace\""), "{header}");
    assert_eq!(jsonl.lines().count(), tel.trace().len() + 1);
}

#[test]
fn campaign_telemetry_is_reproducible() {
    let cfg = CampaignConfig::demo(7, feedback_mode());
    let (r1, t1) = run_campaign_telemetry(&cfg);
    let (r2, t2) = run_campaign_telemetry(&cfg);
    assert_eq!(r1, r2);
    assert_eq!(t1.report().render(), t2.report().render());
    assert_eq!(t1.trace().to_jsonl(), t2.trace().to_jsonl());
}
