//! Integration: the WiFi-side baseline — full association over the
//! simulated medium with real WPA2 keys, DHCP leases and ARP, plus the
//! 802.11 power-save machinery the WiFi-PS scenario leans on.

use wile_dot11::ctrl::{build_ps_poll, CtrlFrame};
use wile_dot11::mac::MacAddr;
use wile_dot11::mgmt::Beacon;
use wile_netstack::ap::AccessPoint;
use wile_netstack::connect::{run_connection, ConnectConfig};
use wile_netstack::powersave::{on_beacon, PsSchedule, WakeAction};
use wile_netstack::sta::Station;
use wile_radio::medium::{Medium, RadioConfig};
use wile_radio::pcap;
use wile_radio::time::Instant;

fn fresh() -> (
    Medium,
    wile_radio::RadioId,
    wile_radio::RadioId,
    AccessPoint,
    Station,
    wile_device::Mcu,
) {
    let mut medium = Medium::new(Default::default(), 50);
    let sta_radio = medium.attach(RadioConfig::default());
    let ap_radio = medium.attach(RadioConfig {
        position_m: (1.0, 0.0),
        ..Default::default()
    });
    let ap_mac = MacAddr::new([0xAA, 0, 0, 0, 0, 1]);
    let sta_mac = MacAddr::new([2, 0, 0, 0, 0, 5]);
    let ap = AccessPoint::new(b"HomeNet", "hunter22", ap_mac, 6);
    let sta = Station::new(sta_mac, b"HomeNet", "hunter22", ap_mac, 0xFEED);
    let mcu = wile_device::Mcu::esp32(Instant::ZERO);
    (medium, sta_radio, ap_radio, ap, sta, mcu)
}

#[test]
fn association_produces_matching_keys_and_lease() {
    let (mut medium, sr, ar, mut ap, mut sta, mut mcu) = fresh();
    let out = run_connection(
        &mut medium,
        sr,
        ar,
        &mut ap,
        &mut sta,
        &mut mcu,
        &ConnectConfig::default(),
    );
    assert!(out.connected);
    assert!(ap.handshake_complete(&sta.mac));
    assert_eq!(ap.lease_of(&sta.mac), sta.ip);
    assert_eq!(sta.gateway_ip, Some(ap.ip));
    assert_eq!(sta.gateway_mac, Some(ap.mac));
    assert_eq!(ap.aid_of(&sta.mac), sta.aid);
}

#[test]
fn every_frame_on_air_has_a_valid_fcs() {
    let (mut medium, sr, ar, mut ap, mut sta, mut mcu) = fresh();
    run_connection(
        &mut medium,
        sr,
        ar,
        &mut ap,
        &mut sta,
        &mut mcu,
        &ConnectConfig::default(),
    );
    let mut n = 0;
    for (_, _, _, bytes) in medium.transmissions() {
        assert!(wile_dot11::fcs::check_fcs(bytes), "frame {n} bad FCS");
        n += 1;
    }
    assert!(n >= 30);
}

#[test]
fn pcap_dump_of_the_association_is_wellformed() {
    let (mut medium, sr, ar, mut ap, mut sta, mut mcu) = fresh();
    run_connection(
        &mut medium,
        sr,
        ar,
        &mut ap,
        &mut sta,
        &mut mcu,
        &ConnectConfig::default(),
    );
    let dump = pcap::dump_medium(&medium);
    // Global header + at least 30 records.
    assert!(dump.len() > 24 + 30 * 16);
    assert_eq!(&dump[0..4], &0xA1B2_C3D4u32.to_le_bytes());
    // Walk the records to the end: lengths must chain exactly.
    let mut off = 24;
    let mut records = 0;
    while off < dump.len() {
        let caplen = u32::from_le_bytes(dump[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16 + caplen;
        records += 1;
    }
    assert_eq!(off, dump.len());
    assert_eq!(records as u64, medium.tx_count());
}

#[test]
fn ps_poll_retrieves_buffered_downlink() {
    // The §3.2 power-save flow: AP buffers while the client dozes, TIM
    // says "traffic", client PS-Polls, AP releases.
    let (mut medium, sr, ar, mut ap, mut sta, mut mcu) = fresh();
    let out = run_connection(
        &mut medium,
        sr,
        ar,
        &mut ap,
        &mut sta,
        &mut mcu,
        &ConnectConfig::default(),
    );
    assert!(out.connected);
    let aid = sta.aid.unwrap();

    // Client dozes; a frame arrives for it at the AP.
    ap.queue_downlink(sta.mac, b"push-notification".to_vec());
    assert_eq!(ap.buffered_count(&sta.mac), 1);

    // Next beacon advertises it.
    let bframe = ap.beacon(mcu.now().as_us());
    let beacon = Beacon::new_checked(&bframe[..]).unwrap();
    let tim = beacon.tim().unwrap();
    assert_eq!(on_beacon(&tim, aid), WakeAction::PollForTraffic);
    // A different AID sleeps on.
    assert_eq!(on_beacon(&tim, aid + 1), WakeAction::BackToSleep);

    // Client sends PS-Poll; AP releases exactly the buffered frame.
    let poll = build_ps_poll(sta.mac, ap.mac, aid);
    let parsed = CtrlFrame::parse(&poll).unwrap();
    assert_eq!(parsed.aid(), Some(aid));
    let released = ap.release_buffered(&sta.mac).unwrap();
    assert_eq!(released, b"push-notification");
    assert_eq!(ap.buffered_count(&sta.mac), 0);

    // Follow-up beacon clears the TIM bit.
    let bframe = ap.beacon(mcu.now().as_us() + 102_400);
    let tim = Beacon::new_checked(&bframe[..]).unwrap().tim().unwrap();
    assert_eq!(on_beacon(&tim, aid), WakeAction::BackToSleep);
}

#[test]
fn ps_schedule_and_tim_interact_consistently() {
    let s = PsSchedule::paper_default();
    // Over ten minutes the paper's client wakes ~1953 times; each wake
    // that finds an empty TIM goes straight back to sleep.
    let wakes = s.wakes_in(wile_radio::Duration::from_secs(600));
    assert_eq!(wakes, 1953);
    let empty = wile_dot11::ie::Tim::empty(0, 3);
    assert_eq!(on_beacon(&empty, 1), WakeAction::BackToSleep);
}

#[test]
fn two_stations_get_distinct_aids_and_leases() {
    let mut medium = Medium::new(Default::default(), 51);
    let ap_mac = MacAddr::new([0xAA, 0, 0, 0, 0, 1]);
    let mut ap = AccessPoint::new(b"HomeNet", "hunter22", ap_mac, 6);

    let mut results = Vec::new();
    for (i, seed) in [(0u8, 0x111u32), (1, 0x222)] {
        let sta_radio = medium.attach(RadioConfig {
            position_m: (0.0, i as f64),
            ..Default::default()
        });
        let ap_radio = medium.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        let sta_mac = MacAddr::new([2, 0, 0, 0, 0, 10 + i]);
        let mut sta = Station::new(sta_mac, b"HomeNet", "hunter22", ap_mac, seed);
        // Each station starts after the previous one finished (time
        // order on the shared medium).
        let start = Instant::from_secs(i as u64 * 10);
        let mut mcu = wile_device::Mcu::esp32(start);
        let out = run_connection(
            &mut medium,
            sta_radio,
            ap_radio,
            &mut ap,
            &mut sta,
            &mut mcu,
            &ConnectConfig::default(),
        );
        assert!(out.connected, "station {i}");
        results.push((sta.aid.unwrap(), sta.ip.unwrap()));
    }
    assert_ne!(results[0].0, results[1].0, "AIDs must differ");
    assert_ne!(results[0].1, results[1].1, "leases must differ");
}
