//! Differential acceptance tests for the cluster subsystem, in the
//! style of `sim_diff.rs`: a 1-gateway [`wile_cluster::GatewayCluster`]
//! — queue, aggregator, election and all — must reproduce a plain
//! [`wile::monitor::Gateway`] ingest byte-for-byte across seeds and
//! fault plans, and multi-gateway runs must be byte-identical at every
//! worker count.

use wile_scenarios::metro::{run_metro, run_metro_reference, MetroConfig};

#[test]
fn one_gateway_cluster_matches_plain_gateway_across_seeds() {
    for seed in [42u64, 7, 9] {
        let cfg = MetroConfig::oracle(seed);
        let reference = run_metro_reference(&cfg);
        let cluster = run_metro(&cfg, 1);
        // The stream itself: every delivery, in order, field for field.
        assert_eq!(
            reference.deliveries, cluster.deliveries,
            "delivery stream diverges (seed {seed})"
        );
        assert_eq!(
            reference.delivery_digest, cluster.delivery_digest,
            "digest diverges (seed {seed})"
        );
        assert_eq!(reference.beacons_sent, cluster.beacons_sent);
        // The cluster adds nothing and loses nothing on one lane: no
        // cross-gateway suppressions, no queue drops (unbounded lane),
        // every hear a win.
        assert_eq!(cluster.stats.delivered, reference.stats.delivered);
        assert_eq!(cluster.stats.total_suppressions(), 0, "seed {seed}");
        assert_eq!(cluster.stats.total_drops(), 0, "seed {seed}");
        assert_eq!(cluster.stats.lanes[0].hears, reference.stats.lanes[0].hears);
        // The oracle config's fault plan really bit: some messages
        // must have been lost, or the fault path was vacuous.
        assert!(
            cluster.stats.delivered < cluster.beacons_sent,
            "fault plan never engaged (seed {seed})"
        );
        assert!(cluster.stats.delivered > 0, "seed {seed}");
    }
}

#[test]
fn cluster_results_are_byte_identical_across_worker_counts() {
    for seed in [42u64, 7] {
        let cfg = MetroConfig::smoke(seed);
        let base = run_metro(&cfg, 1);
        for workers in [2usize, 8] {
            let got = run_metro(&cfg, workers);
            assert_eq!(
                base, got,
                "metro report diverges at {workers} workers (seed {seed})"
            );
        }
    }
}

#[test]
fn smoke_metro_exercises_the_cluster_for_real() {
    // Guard against vacuous equality above: the multi-gateway smoke
    // world must actually overlap (suppressions), elect across lanes
    // (wins on more than one lane), and hand off ownership.
    let report = run_metro(&MetroConfig::smoke(42), 2);
    assert!(report.stats.total_suppressions() > 0, "{:?}", report.stats);
    assert!(
        report.stats.lanes.iter().filter(|l| l.wins > 0).count() > 1,
        "{:?}",
        report.stats
    );
    assert!(report.stats.handoffs > 0, "{:?}", report.stats);
    assert!(report.stats.conserves_offered_load());
}
