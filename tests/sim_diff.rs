//! Differential acceptance tests for the `wile-sim` campaign port: the
//! actor-kernel runner must reproduce the retained pre-refactor event
//! loop byte-for-byte — equal [`CampaignReport`] structs *and* equal
//! rendered text — across seeds, adapt modes, and worker counts. The
//! kernel splits the synchronous two-way feedback round into three
//! same-instant events, so this is the proof that the split preserves
//! the exact medium transmit/drain/listen sequence.

use wile::reliability::{AdaptiveConfig, EnergyBudget, RepeatPolicy};
use wile_radio::time::Duration;
use wile_scenarios::campaign::reference::run_campaign_reference;
use wile_scenarios::campaign::{run_campaign, run_campaigns, AdaptMode, CampaignConfig};

fn feedback_mode() -> AdaptMode {
    AdaptMode::Feedback {
        cfg: AdaptiveConfig {
            target_delivery: 0.9,
            base: RepeatPolicy::SINGLE,
            budget: EnergyBudget {
                per_message_uj_ceiling: 800.0,
                per_copy_uj: 100.0,
            },
            backoff_step: Duration::from_secs(1),
            max_backoff: Duration::from_secs(8),
        },
        every: 2,
    }
}

fn modes() -> Vec<AdaptMode> {
    vec![AdaptMode::Static(RepeatPolicy::SINGLE), feedback_mode()]
}

#[test]
fn kernel_campaign_matches_reference_across_seeds_and_modes() {
    for mode in modes() {
        for seed in [42u64, 7, 9] {
            let cfg = CampaignConfig::demo(seed, mode.clone());
            let reference = run_campaign_reference(&cfg);
            let kernel = run_campaign(&cfg);
            assert_eq!(
                reference, kernel,
                "kernel report diverges from reference (seed {seed}, mode {mode:?})"
            );
            assert_eq!(
                reference.render(),
                kernel.render(),
                "rendered text diverges (seed {seed}, mode {mode:?})"
            );
        }
    }
}

#[test]
fn kernel_campaign_matches_reference_under_parallel_engine() {
    for mode in modes() {
        let cfgs: Vec<CampaignConfig> = [42u64, 7, 9]
            .iter()
            .map(|&seed| CampaignConfig::demo(seed, mode.clone()))
            .collect();
        let reference: Vec<_> = cfgs.iter().map(run_campaign_reference).collect();
        for workers in [1usize, 2, 8] {
            let kernel = run_campaigns(&cfgs, workers);
            assert_eq!(
                reference, kernel,
                "kernel diverges from reference at {workers} workers ({mode:?})"
            );
        }
    }
}

#[test]
fn feedback_exchange_actually_happens_in_both_runners() {
    // Guard against vacuous equality: the feedback arm must really
    // exercise the three-event two-way split.
    let cfg = CampaignConfig::demo(42, feedback_mode());
    let reference = run_campaign_reference(&cfg);
    let kernel = run_campaign(&cfg);
    assert!(reference.feedback_received > 0, "{reference:?}");
    assert_eq!(reference.feedback_received, kernel.feedback_received);
}
