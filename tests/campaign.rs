//! Acceptance tests for the fault-injection campaign runner: the
//! adaptive repeat policy must measurably out-deliver the static
//! single-copy baseline under bursty loss, stay inside its energy
//! budget while doing it, and the whole campaign must be exactly
//! reproducible from its seed.

use wile::reliability::{AdaptiveConfig, EnergyBudget, RepeatPolicy};
use wile_radio::time::Duration;
use wile_scenarios::campaign::{run_campaign, run_with_baseline, AdaptMode, CampaignConfig};

const CEILING_UJ: f64 = 800.0;

fn adaptive_cfg() -> AdaptiveConfig {
    AdaptiveConfig {
        target_delivery: 0.9,
        base: RepeatPolicy::SINGLE,
        budget: EnergyBudget {
            per_message_uj_ceiling: CEILING_UJ,
            per_copy_uj: 100.0,
        },
        backoff_step: Duration::from_secs(1),
        max_backoff: Duration::from_secs(8),
    }
}

fn feedback_mode() -> AdaptMode {
    AdaptMode::Feedback {
        cfg: adaptive_cfg(),
        every: 2,
    }
}

#[test]
fn adaptive_beats_single_copy_baseline_under_burst_loss() {
    let cfg = CampaignConfig::demo(42, feedback_mode());
    let (adaptive, baseline) = run_with_baseline(&cfg);

    let a = adaptive.phase("burst-loss").expect("burst phase in plan");
    let b = baseline.phase("burst-loss").expect("burst phase in plan");
    assert!(a.sent > 5 && b.sent > 5, "phase must carry traffic");
    assert!(
        a.ratio() >= b.ratio() + 0.20,
        "adaptation must buy >= 20 percentage points under burst loss: \
         adaptive {:.1}% vs baseline {:.1}%",
        a.ratio() * 100.0,
        b.ratio() * 100.0,
    );

    // The extra copies must stay inside the configured energy budget.
    assert!(
        adaptive.energy_uj_per_message <= CEILING_UJ,
        "adapted energy {:.1} µJ/msg exceeds the {:.0} µJ ceiling",
        adaptive.energy_uj_per_message,
        CEILING_UJ,
    );

    // And adaptation must have actually engaged, not won by luck.
    assert!(
        adaptive.feedback_received > 0,
        "no feedback round completed"
    );
    assert!(adaptive.avg_copies() > 1.2, "policy never raised k");
    assert!((baseline.avg_copies() - 1.0).abs() < 1e-9);
}

#[test]
fn outage_recovery_is_measured() {
    let cfg = CampaignConfig::demo(42, feedback_mode());
    let report = run_campaign(&cfg);
    let outage = report.phase("outage").expect("outage phase in plan");
    // Every device must be heard from again after the gateway returns,
    // within a couple of periods (plus adaptive backoff).
    let rec = outage.recovery.expect("fleet recovered after the outage");
    assert!(
        rec <= Duration::from_secs(30),
        "recovery took {} after the outage ended",
        rec
    );
}

#[test]
fn same_seed_campaigns_are_byte_identical() {
    let cfg = CampaignConfig::demo(7, feedback_mode());
    let first = run_campaign(&cfg);
    let second = run_campaign(&cfg);
    assert_eq!(first, second);
    assert_eq!(first.render(), second.render());

    // A different seed must actually change the world (guards against
    // the seed being ignored somewhere in the pipeline).
    let other = run_campaign(&CampaignConfig::demo(8, feedback_mode()));
    assert_ne!(first.render(), other.render());
}

#[test]
fn blind_ramp_operates_without_a_return_path() {
    let cfg = CampaignConfig::demo(9, AdaptMode::Blind(adaptive_cfg()));
    let report = run_campaign(&cfg);
    // Blind mode never hears the gateway...
    assert_eq!(report.feedback_received, 0);
    // ...but carrier sense still raises k during the jammer phase.
    assert!(report.avg_copies() > 1.0, "blind ramp never engaged");
    // Budget holds with no feedback at all.
    assert!(report.energy_uj_per_message <= CEILING_UJ);
}
