//! End-to-end integration: the full Wi-LE pipeline across crates —
//! message codec → beacon construction → injection → simulated medium
//! (with faults/range) → monitor-mode gateway → decryption.

use wile::prelude::*;
use wile::registry::Registry;
use wile::sensor::{decode_readings, encode_readings, Reading};
use wile_dot11::mgmt::Beacon;
use wile_radio::medium::TxParams;
use wile_radio::time::{Duration, Instant};
use wile_radio::{FaultInjector, Medium, RadioConfig};

#[test]
fn plaintext_pipeline_delivers_readings() {
    let mut medium = Medium::new(Default::default(), 100);
    let sensor = medium.attach(RadioConfig::default());
    let phone = medium.attach(RadioConfig {
        position_m: (4.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(5), Instant::ZERO);
    let payload = encode_readings(&[Reading::TemperatureCentiC(-512), Reading::Counter(88)]);
    inj.inject(&mut medium, sensor, &payload);

    let mut gw = Gateway::new();
    let got = gw.poll(&mut medium, phone, Instant::from_secs(2));
    assert_eq!(got.len(), 1);
    let readings = decode_readings(&got[0].payload).unwrap();
    assert_eq!(
        readings,
        [Reading::TemperatureCentiC(-512), Reading::Counter(88)]
    );
}

#[test]
fn encrypted_pipeline_round_trips_and_rejects_outsiders() {
    let registry = Registry::provision_fleet(b"secret", 3);
    let mut medium = Medium::new(Default::default(), 101);
    let sensor = medium.attach(RadioConfig::default());
    let phone = medium.attach(RadioConfig {
        position_m: (2.0, 0.0),
        ..Default::default()
    });
    let eavesdropper = medium.attach(RadioConfig {
        position_m: (0.0, 2.0),
        ..Default::default()
    });

    let mut inj = Injector::new(registry.get(2).unwrap().clone(), Instant::ZERO);
    inj.inject_sealed(&mut medium, sensor, b"gate=open");

    // The provisioned phone decrypts.
    let mut gw = Gateway::new();
    let got = gw.poll_decrypt(&mut medium, phone, Instant::from_secs(2), &registry, 0);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, b"gate=open");

    // The eavesdropper sees the beacon but not the plaintext.
    let mut spy = Gateway::new();
    let overheard = spy.poll(&mut medium, eavesdropper, Instant::from_secs(2));
    assert_eq!(overheard.len(), 1);
    assert!(overheard[0].encrypted);
    assert_ne!(overheard[0].payload, b"gate=open");
    // With a wrong registry, nothing decrypts.
    let wrong = Registry::provision_fleet(b"not-the-secret", 3);
    let mut spy2 = Gateway::new();
    assert!(spy2
        .poll_decrypt(&mut medium, eavesdropper, Instant::from_secs(2), &wrong, 0)
        .is_empty());
}

#[test]
fn out_of_range_receiver_hears_nothing() {
    // §2: "the range of Wi-LE is the same as typical WiFi" — but MCS7
    // at 0 dBm specifically is a few metres (§5.4). 60 m is far out.
    let mut medium = Medium::new(Default::default(), 102);
    let sensor = medium.attach(RadioConfig::default());
    let far = medium.attach(RadioConfig {
        position_m: (60.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
    inj.inject(&mut medium, sensor, b"x");
    let mut gw = Gateway::new();
    assert!(gw.poll(&mut medium, far, Instant::from_secs(2)).is_empty());
}

#[test]
fn low_rate_injection_reaches_further() {
    // The bitrate ablation's range story, verified on the actual medium:
    // a receiver where MCS7 dies still hears 1 Mb/s DSSS.
    let run_at = |rate, dist| {
        let mut medium = Medium::new(Default::default(), 103);
        let sensor = medium.attach(RadioConfig::default());
        let rx = medium.attach(RadioConfig {
            position_m: (dist, 0.0),
            ..Default::default()
        });
        let mut inj = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
        inj.rate = rate;
        inj.inject(&mut medium, sensor, b"x");
        let mut gw = Gateway::new();
        gw.poll(&mut medium, rx, Instant::from_secs(2)).len()
    };
    use wile_dot11::phy::PhyRate;
    let d = 25.0;
    assert_eq!(
        run_at(PhyRate::WILE_PAPER, d),
        0,
        "MCS7 should die at {d} m"
    );
    assert_eq!(
        run_at(PhyRate::Dsss1, d),
        1,
        "DSSS-1 should survive at {d} m"
    );
}

#[test]
fn fault_injected_corruption_is_dropped_cleanly() {
    // smoltcp-style fault injection between medium and receiver: a
    // corrupted beacon must fail FCS and be counted, never mis-parsed.
    let mut medium = Medium::new(Default::default(), 104);
    let sensor = medium.attach(RadioConfig::default());
    let phone = medium.attach(RadioConfig {
        position_m: (2.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
    for i in 0..20 {
        inj.sleep_until(Instant::from_secs(1 + i));
        inj.inject(&mut medium, sensor, b"reading");
    }
    // Pull raw frames, corrupt half of them, re-feed a gateway.
    let mut fault = FaultInjector::new(0.0, 0.5, 7);
    let mut gw = Gateway::new();
    let mut delivered = 0;
    for rx in medium.take_inbox(phone, Instant::from_secs(60)) {
        let mut bytes = rx.bytes.to_vec();
        fault.apply(&mut bytes);
        // Feed through a private medium so the gateway path is identical.
        let mut relay = Medium::new(Default::default(), 1);
        let a = relay.attach(RadioConfig::default());
        let _b = relay.attach(RadioConfig {
            position_m: (1.0, 0.0),
            ..Default::default()
        });
        relay.transmit(
            a,
            Instant::from_ms(1),
            TxParams {
                airtime: Duration::from_us(50),
                power_dbm: 0.0,
                min_snr_db: 5.0,
            },
            bytes,
        );
        let got = gw.poll(&mut relay, wile_radio::RadioId(1), Instant::from_secs(1));
        delivered += got.len();
    }
    let stats = gw.stats();
    assert_eq!(stats.frames_seen, 20);
    assert!(stats.bad_fcs >= 5, "bad_fcs {}", stats.bad_fcs);
    assert!((5..20).contains(&delivered), "delivered {delivered}");
    assert_eq!(stats.bad_fcs + stats.delivered, 20);
}

#[test]
fn channel_mismatch_loses_everything() {
    // Wi-LE deployments must agree on a channel out of band (the device
    // cannot scan for its gateway — that would cost the energy Wi-LE
    // exists to avoid). A gateway parked on channel 11 hears nothing
    // from a channel-6 sensor.
    let mut medium = Medium::new(Default::default(), 106);
    let sensor = medium.attach(RadioConfig {
        channel: 6,
        ..Default::default()
    });
    let phone = medium.attach(RadioConfig {
        channel: 11,
        position_m: (1.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(1), Instant::ZERO);
    inj.inject(&mut medium, sensor, b"hello?");
    let mut gw = Gateway::new();
    assert!(gw
        .poll(&mut medium, phone, Instant::from_secs(2))
        .is_empty());
    assert_eq!(gw.stats().frames_seen, 0);
}

#[test]
fn gateway_coexists_with_real_ap_beacons() {
    // §4.1: Wi-LE "does not interfere with the normal operation of WiFi
    // networks" — and vice versa: a gateway scanning amid AP beacons
    // picks out only Wi-LE traffic.
    let mut medium = Medium::new(Default::default(), 105);
    let sensor = medium.attach(RadioConfig::default());
    let ap = medium.attach(RadioConfig {
        position_m: (5.0, 0.0),
        ..Default::default()
    });
    let phone = medium.attach(RadioConfig {
        position_m: (2.0, 2.0),
        ..Default::default()
    });

    let mut access_point = wile_netstack::ap::AccessPoint::new(
        b"HomeNet",
        "pw",
        wile_dot11::MacAddr::new([0xAA; 6]),
        6,
    );
    // Interleave AP beacons and one Wi-LE injection in time order.
    for i in 0..4u64 {
        let b = access_point.beacon(i * 102_400);
        medium.transmit(
            ap,
            Instant::from_us(i * 102_400),
            TxParams {
                airtime: Duration::from_ms(1),
                power_dbm: 20.0,
                min_snr_db: 4.0,
            },
            b,
        );
    }
    let mut inj = Injector::new(DeviceIdentity::new(3), Instant::from_ms(450));
    inj.inject(&mut medium, sensor, b"mine");

    let mut gw = Gateway::new();
    let got = gw.poll(&mut medium, phone, Instant::from_secs(2));
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, b"mine");
    assert_eq!(gw.stats().foreign_beacons, 4);

    // And the AP's beacons still parse as ordinary beacons with visible
    // SSID — Wi-LE did not pollute them.
    let (_, _, _, bytes) = medium.transmissions().next().unwrap();
    let b = Beacon::new_checked(bytes).unwrap();
    assert_eq!(b.ssid().unwrap(), Some(&b"HomeNet"[..]));
}
