//! Differential oracles for the MAC service layer (`wile-mac`).
//!
//! The SAP refactor re-routed every device-facing driver — fleet,
//! metro, campaign, session, association — through MCPS/MLME
//! primitives. Each driver retains its pre-refactor entry point
//! verbatim (`run_*_direct`, the campaign's hand-rolled reference loop,
//! the synchronous `wile::session::run_session`); this suite proves the
//! SAP-routed runner reproduces it **byte for byte** — full reports,
//! rendered text, and FNV-1a delivery digests — across seeds and worker
//! counts. The service layer observes and routes; it must never steer.

use wile_radio::time::Duration;
use wile_scenarios::assoc::{run_assoc_fleet, run_assoc_fleet_direct, AssocConfig};
use wile_scenarios::campaign::reference::run_campaign_reference;
use wile_scenarios::campaign::{run_campaigns, AdaptMode, CampaignConfig};
use wile_scenarios::metro::{run_metro, run_metro_direct, MetroConfig};
use wile_scenarios::session::{run_session_kernel, SessionConfig};
use wile_sim::fleet::{run_fleet, run_fleet_direct, FleetConfig};
use wile_sim::ingest::GatewayIngest;

const SEEDS: [u64; 3] = [42, 7, 9];
const WORKERS: [usize; 3] = [1, 4, 8];

#[test]
fn sap_fleet_matches_direct_across_seeds() {
    for seed in SEEDS {
        let sap = run_fleet(&FleetConfig::smoke(seed));
        let direct = run_fleet_direct(&FleetConfig::smoke(seed));
        assert_eq!(sap, direct, "fleet diverged at seed {seed}");
        assert!(sap.beacons_sent > 0);
    }
}

#[test]
fn sap_metro_matches_direct_across_seeds_and_workers() {
    // The oracle configuration keeps the full delivery stream and runs
    // a fault plan, so this compares every delivered byte — not just
    // the digest — through the fault-filtered path too.
    for seed in SEEDS {
        let cfg = MetroConfig::oracle(seed);
        let direct = run_metro_direct(&cfg, 1);
        assert!(direct.stats.delivered > 0, "oracle delivered nothing");
        for workers in WORKERS {
            let sap = run_metro(&cfg, workers);
            assert_eq!(
                sap, direct,
                "metro diverged at seed {seed}, workers {workers}"
            );
            assert_eq!(sap.delivery_digest, direct.delivery_digest);
        }
    }
}

#[test]
fn sap_metro_matches_direct_multi_gateway() {
    // Multi-gateway smoke world: dedup, handoffs, and bounded lanes all
    // active on both sides.
    for seed in SEEDS {
        let cfg = MetroConfig::smoke(seed);
        let sap = run_metro(&cfg, 4);
        let direct = run_metro_direct(&cfg, 4);
        assert_eq!(sap, direct, "multi-gateway metro diverged at seed {seed}");
        assert!(sap.stats.handoffs > 0 || seed != 42, "{:?}", sap.stats);
    }
}

#[test]
fn sap_campaign_matches_reference_across_seeds_and_workers() {
    // The kernel campaign issues every uplink, repeat copy, and
    // feedback listen through the SAP; the reference drives the raw
    // injector. Feedback mode exercises MCPS-DATA with an rx window
    // plus MLME-WAKE.
    let mode = AdaptMode::Feedback {
        cfg: Default::default(),
        every: 2,
    };
    for workers in WORKERS {
        let cfgs: Vec<CampaignConfig> = SEEDS
            .iter()
            .map(|&seed| CampaignConfig::demo(seed, mode.clone()))
            .collect();
        let sap = run_campaigns(&cfgs, workers);
        for (cfg, got) in cfgs.iter().zip(&sap) {
            let want = run_campaign_reference(cfg);
            assert_eq!(
                got, &want,
                "campaign diverged at seed {}, workers {workers}",
                cfg.seed
            );
            assert_eq!(got.render(), want.render());
        }
    }
}

#[test]
fn sap_session_matches_synchronous_runner_across_seeds() {
    use wile::inject::Injector;
    use wile::registry::DeviceIdentity;
    use wile::session::CommandQueue;
    use wile_radio::medium::{Medium, RadioConfig};
    use wile_radio::time::Instant;

    for seed in SEEDS {
        let cfg = SessionConfig {
            device_id: 9,
            seed,
            cycles: 8,
            window_every: 2,
            period: Duration::from_secs(10),
            commands: (0..4).map(|i| format!("cmd{i}").into_bytes()).collect(),
            gw_position_m: (2.0, 0.0),
        };
        // The synchronous pre-kernel session loop, world matched.
        let mut medium = Medium::new(Default::default(), cfg.seed);
        let dev = medium.attach(RadioConfig::default());
        let gw = medium.attach(RadioConfig {
            position_m: cfg.gw_position_m,
            ..Default::default()
        });
        let mut inj = Injector::new(DeviceIdentity::new(cfg.device_id), Instant::ZERO);
        let mut queue = CommandQueue::new();
        for body in &cfg.commands {
            queue.push(cfg.device_id, body);
        }
        let want = wile::session::run_session(
            &mut medium,
            dev,
            gw,
            &mut inj,
            &mut queue,
            cfg.cycles,
            cfg.window_every,
            cfg.period,
        );
        assert_eq!(
            run_session_kernel(&cfg),
            want,
            "session diverged at seed {seed}"
        );
    }
}

#[test]
fn sap_assoc_matches_direct_across_seeds() {
    for seed in SEEDS {
        let sap = run_assoc_fleet(&AssocConfig::contended(seed));
        let direct = run_assoc_fleet_direct(&AssocConfig::contended(seed));
        assert_eq!(sap, direct, "assoc fleet diverged at seed {seed}");
        assert_eq!(sap.connected, 6);
    }
}

#[test]
fn gateway_indications_preserve_drain_counts() {
    // The gateway-side face: drain_indications lifts every delivery
    // into an MCPS-DATA.indication without filtering or duplication.
    use wile::inject::Injector;
    use wile::monitor::Gateway;
    use wile::registry::DeviceIdentity;
    use wile_mac::MacProtocol;
    use wile_radio::medium::{Medium, RadioConfig};
    use wile_radio::time::Instant;

    let mut medium = Medium::new(Default::default(), 11);
    let gw_radio = medium.attach(RadioConfig::default());
    let dev_radio = medium.attach(RadioConfig {
        position_m: (2.0, 0.0),
        ..Default::default()
    });
    let mut inj = Injector::new(DeviceIdentity::new(5), Instant::ZERO);
    for _ in 0..3 {
        inj.inject(&mut medium, dev_radio, b"reading");
    }
    let mut ingest = GatewayIngest::new(gw_radio, Gateway::new());
    let got = ingest.drain_indications(&mut medium, None, Instant::from_secs(30));
    assert_eq!(got.len(), 3);
    for ind in &got {
        assert_eq!(ind.protocol, MacProtocol::Wile);
        assert_eq!(ind.device_id, 5);
        assert_eq!(ind.payload, b"reading");
    }
    let seqs: Vec<u16> = got.iter().map(|i| i.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2]);
}
